module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy
module Run = Rtnet_stats.Run

type assignment = {
  original : Instance.t;
  buses : Instance.t array;
  bus_of_class : (int * int) list;
}

let class_load phy (c, _) =
  float_of_int (c.Message.cls_burst * Phy.tx_bits phy c.Message.cls_bits)
  /. float_of_int c.Message.cls_window

let partition inst ~buses =
  if buses < 1 then Error "need at least one bus"
  else begin
    let classes = Array.to_list inst.Instance.classes in
    if List.length classes < buses then
      Error "fewer classes than busses"
    else begin
      let phy = inst.Instance.phy in
      (* Explicit total order: heaviest load first, ties broken by
         class id ascending.  Together with the worst-fit tie-break
         below (equal-load busses resolve to the lowest index) the
         partition is a pure function of the class set — independent of
         input order, float comparison quirks and sort stability — as
         topology fingerprints require. *)
      let heaviest_first =
        List.sort
          (fun ((ca, _) as a) ((cb, _) as b) ->
            match compare (class_load phy b) (class_load phy a) with
            | 0 -> compare ca.Message.cls_id cb.Message.cls_id
            | c -> c)
          classes
      in
      let loads = Array.make buses 0. in
      let members = Array.make buses [] in
      let assigned =
        List.map
          (fun ((c, _) as cl) ->
            (* Strict [<]: on equal load the lowest bus index wins. *)
            let lightest = ref 0 in
            Array.iteri
              (fun i l -> if l < loads.(!lightest) then lightest := i)
              loads;
            loads.(!lightest) <- loads.(!lightest) +. class_load phy cl;
            members.(!lightest) <- cl :: members.(!lightest);
            (c.Message.cls_id, !lightest))
          heaviest_first
      in
      let bus_instances =
        Array.mapi
          (fun i cls ->
            Instance.create_exn
              ~name:(Printf.sprintf "%s/bus%d" inst.Instance.name i)
              ~phy ~num_sources:inst.Instance.num_sources (List.rev cls))
          members
      in
      Ok
        {
          original = inst;
          buses = bus_instances;
          bus_of_class = List.sort compare assigned;
        }
    end
  end

let partition_exn inst ~buses =
  match partition inst ~buses with
  | Ok a -> a
  | Error e -> invalid_arg ("Multi_bus.partition_exn: " ^ e)

type report = {
  per_bus : (Ddcr_params.t * Feasibility.report) array;
  feasible : bool;
  worst_margin : float;
}

let check a =
  let per_bus =
    Array.map
      (fun bus ->
        let params = Ddcr_params.default bus in
        (params, Feasibility.check params bus))
      a.buses
  in
  {
    per_bus;
    feasible = Array.for_all (fun (_, r) -> r.Feasibility.feasible) per_bus;
    worst_margin =
      Array.fold_left
        (fun acc (_, r) -> max acc r.Feasibility.worst_margin)
        0. per_bus;
  }

let run ?check_lockstep ?(seed = 1) a ~horizon =
  let outcomes =
    List.map
      (fun bus ->
        let params = Ddcr_params.default bus in
        Ddcr.run ?check_lockstep ~seed params bus ~horizon)
      (Array.to_list a.buses)
  in
  Run.merge
    ~protocol:(Printf.sprintf "csma-ddcr/%d-bus" (Array.length a.buses))
    ~horizon outcomes

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i (params, rep) ->
      Format.fprintf fmt "bus %d: margin %.3f (%a)@," i
        rep.Feasibility.worst_margin Ddcr_params.pp params)
    r.per_bus;
  Format.fprintf fmt "all busses feasible: %b (worst margin %.3f)@]" r.feasible
    r.worst_margin

let dimension ?(max_buses = 4) inst =
  if max_buses < 1 then invalid_arg "Multi_bus.dimension: max_buses < 1";
  let classes = Array.length inst.Instance.classes in
  let rec try_n n =
    if n > max_buses || n > classes then None
    else begin
      match partition inst ~buses:n with
      | Error _ -> None
      | Ok a ->
        let r = check a in
        if r.feasible then Some (a, r) else try_n (n + 1)
    end
  in
  try_n 1
