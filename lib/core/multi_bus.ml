module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy
module Channel = Rtnet_channel.Channel
module Run = Rtnet_stats.Run

type assignment = {
  original : Instance.t;
  buses : Instance.t array;
  bus_of_class : (int * int) list;
}

let class_load phy (c, _) =
  float_of_int (c.Message.cls_burst * Phy.tx_bits phy c.Message.cls_bits)
  /. float_of_int c.Message.cls_window

let partition inst ~buses =
  if buses < 1 then Error "need at least one bus"
  else begin
    let classes = Array.to_list inst.Instance.classes in
    if List.length classes < buses then
      Error "fewer classes than busses"
    else begin
      let phy = inst.Instance.phy in
      let heaviest_first =
        List.sort
          (fun a b -> compare (class_load phy b) (class_load phy a))
          classes
      in
      let loads = Array.make buses 0. in
      let members = Array.make buses [] in
      let assigned =
        List.map
          (fun ((c, _) as cl) ->
            let lightest = ref 0 in
            Array.iteri
              (fun i l -> if l < loads.(!lightest) then lightest := i)
              loads;
            loads.(!lightest) <- loads.(!lightest) +. class_load phy cl;
            members.(!lightest) <- cl :: members.(!lightest);
            (c.Message.cls_id, !lightest))
          heaviest_first
      in
      let bus_instances =
        Array.mapi
          (fun i cls ->
            Instance.create_exn
              ~name:(Printf.sprintf "%s/bus%d" inst.Instance.name i)
              ~phy ~num_sources:inst.Instance.num_sources (List.rev cls))
          members
      in
      Ok
        {
          original = inst;
          buses = bus_instances;
          bus_of_class = List.sort compare assigned;
        }
    end
  end

let partition_exn inst ~buses =
  match partition inst ~buses with
  | Ok a -> a
  | Error e -> invalid_arg ("Multi_bus.partition_exn: " ^ e)

type report = {
  per_bus : (Ddcr_params.t * Feasibility.report) array;
  feasible : bool;
  worst_margin : float;
}

let check a =
  let per_bus =
    Array.map
      (fun bus ->
        let params = Ddcr_params.default bus in
        (params, Feasibility.check params bus))
      a.buses
  in
  {
    per_bus;
    feasible = Array.for_all (fun (_, r) -> r.Feasibility.feasible) per_bus;
    worst_margin =
      Array.fold_left
        (fun acc (_, r) -> max acc r.Feasibility.worst_margin)
        0. per_bus;
  }

let merge_stats a b =
  {
    Channel.idle_slots = a.Channel.idle_slots + b.Channel.idle_slots;
    collision_slots = a.Channel.collision_slots + b.Channel.collision_slots;
    tx_count = a.Channel.tx_count + b.Channel.tx_count;
    garbled_count = a.Channel.garbled_count + b.Channel.garbled_count;
    busy_bits = a.Channel.busy_bits + b.Channel.busy_bits;
    total_bits = a.Channel.total_bits + b.Channel.total_bits;
  }

let run ?check_lockstep ?(seed = 1) a ~horizon =
  let outcomes =
    Array.map
      (fun bus ->
        let params = Ddcr_params.default bus in
        Ddcr.run ?check_lockstep ~seed params bus ~horizon)
      a.buses
  in
  let completions =
    List.sort
      (fun c1 c2 -> compare c1.Run.c_finish c2.Run.c_finish)
      (List.concat_map (fun o -> o.Run.completions) (Array.to_list outcomes))
  in
  let channel =
    Array.fold_left
      (fun acc o ->
        match (acc, o.Run.channel) with
        | None, s -> s
        | Some s, None -> Some s
        | Some s, Some s' -> Some (merge_stats s s'))
      None outcomes
  in
  {
    Run.protocol = Printf.sprintf "csma-ddcr/%d-bus" (Array.length a.buses);
    completions;
    unfinished =
      List.concat_map (fun o -> o.Run.unfinished) (Array.to_list outcomes);
    dropped = List.concat_map (fun o -> o.Run.dropped) (Array.to_list outcomes);
    horizon;
    channel;
    faults = None;
  }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i (params, rep) ->
      Format.fprintf fmt "bus %d: margin %.3f (%a)@," i
        rep.Feasibility.worst_margin Ddcr_params.pp params)
    r.per_bus;
  Format.fprintf fmt "all busses feasible: %b (worst margin %.3f)@]" r.feasible
    r.worst_margin

let dimension ?(max_buses = 4) inst =
  if max_buses < 1 then invalid_arg "Multi_bus.dimension: max_buses < 1";
  let classes = Array.length inst.Instance.classes in
  let rec try_n n =
    if n > max_buses || n > classes then None
    else begin
      match partition inst ~buses:n with
      | Error _ -> None
      | Ok a ->
        let r = check a in
        if r.feasible then Some (a, r) else try_n (n + 1)
    end
  in
  try_n 1
