(** Structured protocol event traces.

    {!Ddcr.run_trace} can emit one event per channel slot plus phase
    transitions.  Traces serve three purposes: debugging a
    configuration (print them), validating the slot accounting
    (e.g. the test suite checks that a trace's totals reconcile exactly
    with the channel statistics and the completion list), and measuring
    where the protocol spends the medium — free slots, open attempts,
    time-tree probes, static-tree probes, frames. *)

type via =
  | Free_csma  (** carried during free CSMA-CD operation *)
  | Open_attempt  (** carried in the post-TTs open attempt slot *)
  | Time_tree  (** isolated at time-tree level *)
  | Static_tree  (** isolated during a static tree search *)
  | Bursting  (** appended to an acquisition by packet bursting *)

type event =
  | Idle_slot of { time : int; phase : string }
      (** an empty contention slot; [phase] is the automaton phase it
          was spent in ("free", "attempt", "tts", "sts") *)
  | Collision_slot of { time : int; phase : string; contenders : int }
      (** a destroyed slot ([contenders >= 2]) *)
  | Garbled_slot of { time : int; on_wire : int }
      (** a lone frame destroyed by channel noise (fault injection) *)
  | Frame_sent of {
      time : int;  (** first bit on the wire *)
      finish : int;  (** last bit *)
      source : int;
      uid : int;
      via : via;
    }
  | Tts_begin of { time : int; reft : int }
      (** a time tree search started (reft as adopted) *)
  | Tts_end of { time : int; sent : bool }
      (** the time tree search completed; [sent] is the [out] flag *)
  | Sts_begin of { time : int; time_leaf : int }
      (** a static tree search started on a colliding deadline class *)
  | Sts_end of { time : int }
      (** the static tree search completed *)
  | Crash of { time : int; source : int }
      (** a station went down (fault-plan crash window opened) *)
  | Rejoin of { time : int; source : int }
      (** a crashed station came back up; it listens only until it
          resynchronizes *)
  | Desync of { time : int; source : int }
      (** divergence detection: the station's replica digest disagreed
          with the plurality; it goes listen-only *)
  | Resync of { time : int; source : int }
      (** the station re-acquired the shared replica state at a
          tree-epoch boundary and re-enters contention *)

(** Per-trace slot accounting. *)
type summary = {
  idle_by_phase : (string * int) list;  (** empty slots per phase *)
  collision_slots : int;  (** destroyed slots *)
  garbled_slots : int;  (** noise-destroyed frames *)
  frames : int;  (** frames carried *)
  frames_by_via : (via * int) list;  (** carried frames per path *)
  tts_count : int;  (** time tree searches run *)
  tts_productive : int;  (** of which transmitted something *)
  sts_count : int;  (** static tree searches run *)
  crashes : int;  (** stations going down *)
  rejoins : int;  (** stations coming back up *)
  desyncs : int;  (** divergence detections *)
  resyncs : int;  (** completed recoveries *)
}

val collector : unit -> (event -> unit) * (unit -> event list)
(** [collector ()] is [(record, finish)]: pass [record] as
    [?on_event]; [finish ()] returns the events in emission order. *)

val summarize : event list -> summary
(** [summarize events] tallies the trace. *)

val pp_via : Format.formatter -> via -> unit
(** [pp_via fmt v] prints the path name. *)

val pp_event : Format.formatter -> event -> unit
(** [pp_event fmt e] prints one event on one line. *)

val pp_summary : Format.formatter -> summary -> unit
(** [pp_summary fmt s] prints the accounting block. *)
