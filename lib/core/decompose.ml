type policy = Proportional | Slack_weighted

let policy_label = function
  | Proportional -> "proportional"
  | Slack_weighted -> "slack-weighted"

let policy_of_label = function
  | "proportional" -> Ok Proportional
  | "slack-weighted" | "slack_weighted" | "slack" -> Ok Slack_weighted
  | other ->
    Error
      (Printf.sprintf
         "unknown decomposition policy %S (expected proportional or \
          slack-weighted)"
         other)

let split ~policy ~deadline ~bridge_delays ~bounds =
  let n = List.length bounds in
  if n = 0 then Error "deadline decomposition: empty hop path"
  else if List.exists (fun d -> d < 0) bridge_delays then
    Error "deadline decomposition: negative bridge delay"
  else begin
    let delays = List.fold_left ( + ) 0 bridge_delays in
    let available = deadline - delays in
    (* Each hop must at least cover its own B_DDCR (at least one
       bit-time: a degenerate bound still needs time on the wire). *)
    let needs =
      Array.of_list
        (List.map (fun b -> max 1 (int_of_float (ceil b))) bounds)
    in
    let need_total = Array.fold_left ( + ) 0 needs in
    if need_total > available then
      Error
        (Printf.sprintf
           "deadline decomposition: d(M) = %d leaves %d bit-times after %d \
            of bridge delay, but the per-hop B_DDCR bounds already need %d"
           deadline available delays need_total)
    else begin
      let slack = available - need_total in
      let budgets =
        match policy with
        | Slack_weighted ->
          let q = slack / n and r = slack mod n in
          Array.mapi (fun i need -> need + q + if i < r then 1 else 0) needs
        | Proportional ->
          let weights = Array.of_list bounds in
          let total_w = Array.fold_left ( +. ) 0. weights in
          (* Degenerate weights (all ~0) fall back to equal shares. *)
          let weights =
            if total_w > 0. then weights else Array.make n 1.
          in
          let total_w = Array.fold_left ( +. ) 0. weights in
          let ideal =
            Array.map (fun w -> float_of_int available *. w /. total_w) weights
          in
          let budgets = Array.map (fun x -> int_of_float (floor x)) ideal in
          let assigned = Array.fold_left ( + ) 0 budgets in
          (* Largest-remainder apportionment of the leftover bit-times;
             ties broken towards the lowest hop index so the result is
             order-deterministic. *)
          let by_remainder =
            List.sort
              (fun (i, ri) (j, rj) ->
                match compare rj ri with 0 -> compare i j | c -> c)
              (List.init n (fun i ->
                   (i, ideal.(i) -. float_of_int budgets.(i))))
          in
          List.iteri
            (fun k (i, _) ->
              if k < available - assigned then budgets.(i) <- budgets.(i) + 1)
            by_remainder;
          (* Deterministic repair: raise every hop to its need, paying
             out of the surplus hops scanned left to right.  Total
             surplus covers the total deficit because
             Σ budgets = available >= Σ needs. *)
          let deficit = ref 0 in
          Array.iteri
            (fun i b ->
              if b < needs.(i) then begin
                deficit := !deficit + (needs.(i) - b);
                budgets.(i) <- needs.(i)
              end)
            budgets;
          let i = ref 0 in
          while !deficit > 0 do
            let surplus = budgets.(!i) - needs.(!i) in
            let take = min surplus !deficit in
            budgets.(!i) <- budgets.(!i) - take;
            deficit := !deficit - take;
            incr i
          done;
          budgets
      in
      Ok (Array.to_list budgets)
    end
  end
