module Int_math = Rtnet_util.Int_math

type outcome = Empty | Isolated of int | Split | Leaf_collision of int list

type step = { lo : int; width : int; actives : int list; outcome : outcome }

type trace = step list

let run ~m ~t ~active =
  if m < 2 then invalid_arg "Tree_search.run: m < 2";
  if t < 1 || not (Int_math.is_power_of m t) then
    invalid_arg "Tree_search.run: t must be a power of m";
  List.iter
    (fun leaf ->
      if leaf < 0 || leaf >= t then invalid_arg "Tree_search.run: leaf out of range")
    active;
  let active = List.sort compare active in
  (* Depth-first, leftmost subtree first: a stack of intervals to
     probe.  Each probe consumes the interval on top. *)
  let rec probe acc = function
    | [] -> List.rev acc
    | (lo, width) :: stack ->
      let inside = List.filter (fun l -> l >= lo && l < lo + width) active in
      let step outcome = { lo; width; actives = inside; outcome } in
      (match inside with
      | [] -> probe (step Empty :: acc) stack
      | [ leaf ] -> probe (step (Isolated leaf) :: acc) stack
      | _ :: _ :: _ when width = 1 ->
        probe (step (Leaf_collision inside) :: acc) stack
      | _ :: _ :: _ ->
        let child = width / m in
        let children = List.init m (fun i -> (lo + (i * child), child)) in
        probe (step Split :: acc) (children @ stack))
  in
  probe [] [ (0, t) ]

let cost tr =
  List.fold_left
    (fun acc s ->
      match s.outcome with
      | Empty | Split | Leaf_collision _ -> acc + 1
      | Isolated _ -> acc)
    0 tr

let isolated tr =
  List.filter_map
    (fun s -> match s.outcome with Isolated l -> Some l | Empty | Split | Leaf_collision _ -> None)
    tr

let pp_step fmt s =
  let label =
    match s.outcome with
    | Empty -> "empty"
    | Isolated l -> Printf.sprintf "isolated %d" l
    | Split -> "split"
    | Leaf_collision ls -> Printf.sprintf "leaf-collision (%d)" (List.length ls)
  in
  Format.fprintf fmt "[%d,%d) -> %s" s.lo (s.lo + s.width) label

let run_arbitrated ~m ~t ~active =
  if m < 2 then invalid_arg "Tree_search.run_arbitrated: m < 2";
  if t < 1 || not (Int_math.is_power_of m t) then
    invalid_arg "Tree_search.run_arbitrated: t must be a power of m";
  let leaves = List.map fst active in
  if List.length (List.sort_uniq compare leaves) <> List.length leaves then
    invalid_arg "Tree_search.run_arbitrated: duplicate leaves";
  List.iter
    (fun (leaf, _) ->
      if leaf < 0 || leaf >= t then
        invalid_arg "Tree_search.run_arbitrated: leaf out of range")
    active;
  let remaining = Hashtbl.create 16 in
  List.iter (fun (leaf, key) -> Hashtbl.replace remaining leaf key) active;
  let inside lo w =
    Hashtbl.fold
      (fun leaf key acc -> if leaf >= lo && leaf < lo + w then (key, leaf) :: acc else acc)
      remaining []
  in
  let rec probe cost order = function
    | [] -> (cost, List.rev order)
    | (lo, w) :: stack -> (
      match inside lo w with
      | [] -> probe (cost + 1) order stack
      | [ (_, leaf) ] ->
        Hashtbl.remove remaining leaf;
        probe cost (leaf :: order) stack
      | several ->
        (* Collision slot: the smallest key wins and is carried. *)
        let _, winner = List.fold_left min (List.hd several) (List.tl several) in
        Hashtbl.remove remaining winner;
        let child = w / m in
        let children = List.init m (fun i -> (lo + (i * child), child)) in
        probe (cost + 1) (winner :: order) (children @ stack))
  in
  probe 0 [] [ (0, t) ]
