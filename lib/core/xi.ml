module Int_math = Rtnet_util.Int_math

let check_tree ~m ~t =
  if m < 2 then invalid_arg "Xi: branching degree m must be >= 2";
  if t < m || not (Int_math.is_power_of m t) then
    invalid_arg "Xi: t must be a positive power of m, t >= m"

let check_k ~t ~k =
  if k < 0 || k > t then invalid_arg "Xi: k out of [0, t]"

(* ⌊log_m (num/den)⌋ for positive integers — exact even when the
   quotient is below 1 (negative result): the largest integer e with
   den·m^e <= num. *)
let log_floor_ratio m num den =
  if num <= 0 || den <= 0 then invalid_arg "Xi.log_floor_ratio";
  if den <= num then begin
    let rec largest e p = if p * m <= num then largest (e + 1) (p * m) else e in
    largest 0 den
  end
  else begin
    (* e < 0: the smallest j >= 1 with num·m^j >= den gives e = −j. *)
    let rec smallest j p = if num * p >= den then j else smallest (j + 1) (p * m) in
    -(smallest 1 m)
  end

let exact ~m ~t ~k =
  check_tree ~m ~t;
  check_k ~t ~k;
  if k = 0 then 1
  else if k = 1 then 0
  else begin
    let p = k / 2 in
    let mp = m * p in
    let term1 = (Int_math.pow m (Int_math.log_ceil m mp) - 1) / (m - 1) in
    let term2 = mp * log_floor_ratio m t mp in
    term1 + term2 - (k - mp)
  end

(* Divide-and-conquer recursion, Eq. 2-4. *)
let table ~m ~t =
  check_tree ~m ~t;
  (* Base, t = m, from Eq. 1 with unit subtrees: ξ_k^m = 1 + m − k for
     k >= 2 (reproduces Eq. 4). *)
  let base =
    Array.init (m + 1) (fun k ->
        if k = 0 then 1 else if k = 1 then 0 else 1 + m - k)
  in
  let step prev t_next =
    let t_child = t_next / m in
    let next = Array.make (t_next + 1) 0 in
    next.(0) <- 1;
    next.(1) <- 0;
    for p = 1 to t_next / 2 do
      let clamped = min p t_child in
      let sum = ref 1 in
      for i = 0 to m - 1 do
        sum := !sum + prev.(2 * ((clamped + i) / m))
      done;
      let even = !sum - (2 * max 0 (p - t_child)) in
      next.(2 * p) <- even;
      if (2 * p) + 1 <= t_next then next.((2 * p) + 1) <- even - 1
    done;
    next
  in
  let rec go cur size = if size = t then cur else go (step cur (size * m)) (size * m) in
  go base m

(* Defining recursion Eq. 1 solved by max-plus convolution DP. *)
let of_recursion ~m ~t ~k =
  check_tree ~m ~t;
  check_k ~t ~k;
  let unit_tree = [| 1; 0 |] in
  let step child t_next =
    let t_child = t_next / m in
    (* g.(s) = max over compositions s = k_1 + ... + k_j of Σ ξ_{k_i}. *)
    let g = ref (Array.copy child) in
    for j = 2 to m do
      let reach = j * t_child in
      let g' = Array.make (reach + 1) min_int in
      for s = 0 to reach do
        for q = max 0 (s - ((j - 1) * t_child)) to min t_child s do
          let v = !g.(s - q) + child.(q) in
          if v > g'.(s) then g'.(s) <- v
        done
      done;
      g := g'
    done;
    Array.init (t_next + 1) (fun k ->
        if k = 0 then 1 else if k = 1 then 0 else 1 + !g.(k))
  in
  let rec go cur size = if size = t then cur else go (step cur (size * m)) (size * m) in
  (go unit_tree 1).(k)

let eq5 ~m ~t =
  check_tree ~m ~t;
  (m * Int_math.log_floor m t) - 1

let eq7 ~m ~t =
  check_tree ~m ~t;
  (t - 1) / (m - 1)

let eq6 ~m ~t =
  check_tree ~m ~t;
  eq7 ~m ~t + (t - (2 * t / m))

let derivative ~m ~t ~p =
  check_tree ~m ~t;
  if t = m then invalid_arg "Xi.derivative: needs n >= 2";
  if p < 1 || p > (t / 2) - 1 then invalid_arg "Xi.derivative: p out of range";
  (m * (Int_math.log_floor m t - Int_math.log_floor m (m * p))) - 2

let linear_tail ~m ~t ~k =
  check_tree ~m ~t;
  if k < 2 * t / m || k > t then
    invalid_arg "Xi.linear_tail: k out of [2t/m, t]";
  (((m * t) - 1) / (m - 1)) - k

let tilde ~m ~t k =
  check_tree ~m ~t;
  if k <= 0. || k > float_of_int t then invalid_arg "Xi.tilde: k out of (0, t]";
  let fm = float_of_int m and ft = float_of_int t in
  let half = k /. 2. in
  ((fm *. half) -. 1.) /. (fm -. 1.)
  +. (fm *. half *. (log (2. *. ft /. k) /. log fm))
  -. k

let tilde_is_exact_at ~m ~t ~k =
  check_tree ~m ~t;
  check_k ~t ~k;
  k >= 2 && k mod 2 = 0 && Int_math.is_power_of m (k / 2)
  && k / 2 <= t / 2 (* i <= ⌊log_m(t/2)⌋ means 2·m^i <= ... m^i <= t/2 *)

let max_gap ~m ~t =
  check_tree ~m ~t;
  let xs = table ~m ~t in
  let hi = 2 * t / m in
  let rec go k best =
    if k > hi then best
    else begin
      let gap = tilde ~m ~t (float_of_int k) -. float_of_int xs.(k) in
      go (k + 2) (max best gap)
    end
  in
  go 2 0.

let max_gap_any_parity ~m ~t =
  check_tree ~m ~t;
  let xs = table ~m ~t in
  let hi = 2 * t / m in
  let rec go k best =
    if k > hi then best
    else begin
      let gap = tilde ~m ~t (float_of_int k) -. float_of_int xs.(k) in
      go (k + 1) (max best gap)
    end
  in
  go 2 0.

let gap_bound ~m =
  if m < 2 then invalid_arg "Xi.gap_bound: m < 2";
  let fm = float_of_int m in
  (Float.pow fm (1. /. (fm -. 1.)) /. (Float.exp 1. *. log fm))
  -. (1. /. (fm -. 1.))

let gap_bound_universal =
  (sqrt (sqrt 3.) /. (2. *. Float.exp 1. *. log 3.)) -. 0.125

(* Expected search cost over uniformly random k-subsets of leaves.

   A node is probed iff every proper ancestor holds >= 2 active leaves;
   since subtree counts only shrink going down, that is equivalent to
   its parent holding >= 2.  A probe costs one slot unless it isolates
   exactly one leaf.  With (count(node), count(parent)) jointly
   hypergeometric, the expectation is a closed sum; all nodes of one
   depth share it by symmetry. *)
let expected ~m ~t ~k =
  check_tree ~m ~t;
  check_k ~t ~k;
  if k = 0 then 1.
  else if k = 1 then 0.
  else begin
    (* ln C(n, r) via a ln-factorial table. *)
    let lnfact = Array.make (t + 1) 0. in
    for i = 2 to t do
      lnfact.(i) <- lnfact.(i - 1) +. log (float_of_int i)
    done;
    let ln_choose n r =
      if r < 0 || r > n then neg_infinity
      else lnfact.(n) -. lnfact.(r) -. lnfact.(n - r)
    in
    let ln_total = ln_choose t k in
    (* Root: probed always, and k >= 2 means a collision slot. *)
    let total = ref 1. in
    let s = ref (t / m) in
    while !s >= 1 do
      let size = !s in
      let parent = size * m in
      let nodes = float_of_int (t / size) in
      (* P(count(node) = j and count(parent) = J). *)
      let p = ref 0. in
      for capital_j = 2 to min k parent do
        for j = 0 to min capital_j size do
          if j <> 1 && k - capital_j <= t - parent then begin
            let lnp =
              ln_choose size j
              +. ln_choose (parent - size) (capital_j - j)
              +. ln_choose (t - parent) (k - capital_j)
              -. ln_total
            in
            if lnp > neg_infinity then p := !p +. exp lnp
          end
        done
      done;
      total := !total +. (nodes *. !p);
      s := size / m
    done;
    !total
  end

let expected_efficiency ~m ~t ~k ~frame_slots =
  if frame_slots <= 0. then invalid_arg "Xi.expected_efficiency: frame_slots";
  if k < 1 then invalid_arg "Xi.expected_efficiency: k < 1";
  let payload = float_of_int k *. frame_slots in
  payload /. (payload +. expected ~m ~t ~k)

(* Witness subsets: recover one argmax composition at every internal
   node of the defining recursion, then place leaves accordingly. *)
let worst_case_subset ~m ~t ~k =
  check_tree ~m ~t;
  check_k ~t ~k;
  (* Memoised ξ per subtree size (sizes are m^j, reuse [table]). *)
  let tables = Hashtbl.create 8 in
  let xi_of size =
    match Hashtbl.find_opt tables size with
    | Some a -> a
    | None ->
      let a = if size = 1 then [| 1; 0 |] else table ~m ~t:size in
      Hashtbl.add tables size a;
      a
  in
  (* Split k into m parts (k_1..k_m), each <= child, maximising the sum
     of child ξ values: DP with backpointers. *)
  let split size k =
    let child = size / m in
    let xs = xi_of child in
    let neg = min_int / 2 in
    let best = Array.make_matrix (m + 1) (k + 1) neg in
    let choice = Array.make_matrix (m + 1) (k + 1) (-1) in
    best.(0).(0) <- 0;
    for j = 1 to m do
      for s = 0 to min k (j * child) do
        for q = max 0 (s - ((j - 1) * child)) to min child s do
          if best.(j - 1).(s - q) > neg then begin
            let v = best.(j - 1).(s - q) + xs.(q) in
            if v > best.(j).(s) then begin
              best.(j).(s) <- v;
              choice.(j).(s) <- q
            end
          end
        done
      done
    done;
    let rec back j s acc =
      if j = 0 then acc
      else begin
        let q = choice.(j).(s) in
        back (j - 1) (s - q) (q :: acc)
      end
    in
    back m k []
  in
  let rec place size offset k acc =
    if k = 0 then acc
    else if size = 1 then offset :: acc
    else if k = 1 then offset :: acc (* leftmost leaf: cost 0 regardless *)
    else begin
      let parts = split size k in
      let child = size / m in
      let _, acc =
        List.fold_left
          (fun (off, acc) ki -> (off + child, place child off ki acc))
          (offset, acc) parts
      in
      acc
    end
  in
  List.sort compare (place t 0 k [])

let total_over_ks ~m ~t =
  let xs = table ~m ~t in
  let sum = ref 0 in
  for k = 2 to t do
    sum := !sum + xs.(k)
  done;
  !sum

let best_branching ~min_leaves ~candidates =
  if min_leaves < 1 then invalid_arg "Xi.best_branching: min_leaves < 1";
  match candidates with
  | [] -> invalid_arg "Xi.best_branching: no candidates"
  | _ :: _ ->
    let score m =
      let rec tree size = if size >= min_leaves then size else tree (size * m) in
      let t = tree m in
      float_of_int (total_over_ks ~m ~t) /. float_of_int t
    in
    List.fold_left
      (fun best m -> if score m < score best then m else best)
      (List.hd candidates) candidates
