let tilde_real ~m ~t ~k =
  if m < 2 then invalid_arg "Multi_tree.tilde_real: m < 2";
  if k <= 0. || t <= 0. then invalid_arg "Multi_tree.tilde_real: domain";
  let fm = float_of_int m in
  let half = k /. 2. in
  ((fm *. half) -. 1.) /. (fm -. 1.)
  +. (fm *. half *. (log (2. *. t /. k) /. log fm))
  -. k

let bound ~m ~t ~u ~v =
  if u < 0 then invalid_arg "Multi_tree.bound: u < 0";
  if v < 1 then invalid_arg "Multi_tree.bound: v < 1";
  if u = 0 then 0.
  else begin
    (* Fold any per-tree overflow into extra trees, then clamp the
       equal share below by 2 (ξ̃ is increasing there, so this only
       raises the bound). *)
    let v = max v (Rtnet_util.Int_math.cdiv u t) in
    let share = max 2. (float_of_int u /. float_of_int v) in
    float_of_int v *. tilde_real ~m ~t:(float_of_int t) ~k:share
  end

let bound_eq19 ~m ~t ~u ~v =
  if u < 2 * v || u > t * v then
    invalid_arg "Multi_tree.bound_eq19: u out of [2v, tv]";
  tilde_real ~m ~t:(float_of_int (t * v)) ~k:(float_of_int u)
  -. (float_of_int (v - 1) /. float_of_int (m - 1))

let worst_exact_of ~xi ~t ~u ~v =
  if v < 1 then invalid_arg "Multi_tree.worst_exact: v < 1";
  if u < 2 * v || u > t * v then
    invalid_arg "Multi_tree.worst_exact: u out of [2v, tv]";
  let xs = xi in
  let neg = min_int / 2 in
  (* best.(s) after j trees = max Σ ξ over compositions of s. *)
  let best = ref (Array.make (u + 1) neg) in
  !best.(0) <- 0;
  for _ = 1 to v do
    let next = Array.make (u + 1) neg in
    for s = 0 to u do
      if !best.(s) > neg then
        for k = 2 to min t (u - s) do
          let value = !best.(s) + xs.(k) in
          if value > next.(s + k) then next.(s + k) <- value
        done
    done;
    best := next
  done;
  !best.(u)

let worst_exact ~m ~t ~u ~v = worst_exact_of ~xi:(Xi.table ~m ~t) ~t ~u ~v
