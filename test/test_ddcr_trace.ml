module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Channel = Rtnet_channel.Channel
module Run = Rtnet_stats.Run

let ms = 1_000_000

let run_with_trace ?fault inst ~seed ~horizon =
  let params = Ddcr_params.default inst in
  let record, finish = Ddcr_trace.collector () in
  let outcome = Ddcr.run ~on_event:record ?fault ~seed params inst ~horizon in
  (outcome, finish ())

let test_totals_reconcile_with_channel () =
  let inst = Scenarios.trading ~gateways:4 in
  let outcome, events = run_with_trace inst ~seed:6 ~horizon:(10 * ms) in
  let s = Ddcr_trace.summarize events in
  match outcome.Run.channel with
  | None -> Alcotest.fail "expected channel stats"
  | Some st ->
    let idle_total =
      List.fold_left (fun acc (_, n) -> acc + n) 0 s.Ddcr_trace.idle_by_phase
    in
    Alcotest.(check int) "idle slots match" st.Channel.idle_slots idle_total;
    Alcotest.(check int) "collision slots match" st.Channel.collision_slots
      s.Ddcr_trace.collision_slots;
    Alcotest.(check int) "frames match tx_count" st.Channel.tx_count
      s.Ddcr_trace.frames;
    Alcotest.(check int) "frames match completions"
      (List.length outcome.Run.completions)
      s.Ddcr_trace.frames

let test_searches_balanced () =
  let inst = Scenarios.trading ~gateways:4 in
  let _, events = run_with_trace inst ~seed:6 ~horizon:(10 * ms) in
  (* Every Sts_begin is matched by an Sts_end; every Tts_end follows a
     Tts_begin; Sts events only occur inside a TTs. *)
  let tts_open = ref 0 and sts_open = ref 0 and ok = ref true in
  List.iter
    (fun e ->
      match e with
      | Ddcr_trace.Tts_begin _ ->
        if !tts_open <> 0 then ok := false;
        incr tts_open
      | Ddcr_trace.Tts_end _ ->
        if !tts_open <> 1 || !sts_open <> 0 then ok := false;
        decr tts_open
      | Ddcr_trace.Sts_begin _ ->
        if !tts_open <> 1 || !sts_open <> 0 then ok := false;
        incr sts_open
      | Ddcr_trace.Sts_end _ ->
        if !sts_open <> 1 then ok := false;
        decr sts_open
      | Ddcr_trace.Idle_slot _ | Ddcr_trace.Collision_slot _
      | Ddcr_trace.Garbled_slot _ | Ddcr_trace.Frame_sent _
      | Ddcr_trace.Crash _ | Ddcr_trace.Rejoin _ | Ddcr_trace.Desync _
      | Ddcr_trace.Resync _ -> ())
    events;
  Alcotest.(check bool) "well parenthesised" true (!ok && !tts_open = 0 && !sts_open = 0)

let test_vias_observed () =
  let inst = Scenarios.trading ~gateways:4 in
  let _, events = run_with_trace inst ~seed:6 ~horizon:(20 * ms) in
  let s = Ddcr_trace.summarize events in
  let via v = try List.assoc v s.Ddcr_trace.frames_by_via with Not_found -> 0 in
  (* A bursty contended workload exercises every transmission path
     except bursting (disabled by default). *)
  Alcotest.(check bool) "free csma frames" true (via Ddcr_trace.Free_csma > 0);
  Alcotest.(check bool) "static tree frames" true (via Ddcr_trace.Static_tree > 0);
  Alcotest.(check bool)
    "time-tree or attempt frames" true
    (via Ddcr_trace.Time_tree + via Ddcr_trace.Open_attempt > 0);
  Alcotest.(check int) "no bursting" 0 (via Ddcr_trace.Bursting);
  Alcotest.(check bool) "some searches ran" true (s.Ddcr_trace.tts_count > 0);
  Alcotest.(check bool) "productive <= total" true
    (s.Ddcr_trace.tts_productive <= s.Ddcr_trace.tts_count)

let test_burst_frames_traced () =
  let inst = Scenarios.trading ~gateways:4 in
  let params = Ddcr_params.with_burst (Ddcr_params.default inst) 65_536 in
  let record, finish = Ddcr_trace.collector () in
  let _ = Ddcr.run ~on_event:record ~seed:6 params inst ~horizon:(10 * ms) in
  let s = Ddcr_trace.summarize (finish ()) in
  let via v = try List.assoc v s.Ddcr_trace.frames_by_via with Not_found -> 0 in
  Alcotest.(check bool) "burst frames recorded" true (via Ddcr_trace.Bursting > 0)

let test_garbled_traced () =
  let inst = Scenarios.videoconference ~stations:4 in
  let fault = { Channel.fault_rate = 0.3; fault_seed = 99 } in
  let outcome, events = run_with_trace ~fault inst ~seed:3 ~horizon:(20 * ms) in
  let s = Ddcr_trace.summarize events in
  Alcotest.(check bool) "garbled events seen" true (s.Ddcr_trace.garbled_slots > 0);
  match outcome.Run.channel with
  | Some st ->
    Alcotest.(check int) "garbled matches stats" st.Channel.garbled_count
      s.Ddcr_trace.garbled_slots
  | None -> Alcotest.fail "expected stats"

let test_printers () =
  let inst = Scenarios.trading ~gateways:3 in
  let _, events = run_with_trace inst ~seed:2 ~horizon:(2 * ms) in
  let s = Ddcr_trace.summarize events in
  let text =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Ddcr_trace.pp_event) events)
  in
  Alcotest.(check bool) "events render" true (String.length text > 0);
  let sm = Format.asprintf "%a" Ddcr_trace.pp_summary s in
  Alcotest.(check bool) "summary renders" true
    (Astring_contains.contains sm "frames:")

let suite =
  [
    ( "ddcr_trace",
      [
        Alcotest.test_case "totals reconcile" `Quick
          test_totals_reconcile_with_channel;
        Alcotest.test_case "searches balanced" `Quick test_searches_balanced;
        Alcotest.test_case "vias observed" `Quick test_vias_observed;
        Alcotest.test_case "burst frames traced" `Quick test_burst_frames_traced;
        Alcotest.test_case "garbled traced" `Quick test_garbled_traced;
        Alcotest.test_case "printers" `Quick test_printers;
      ] );
  ]
