(* rtnet.obs: the black-box flight recorder, the cross-segment causal
   flow tracer and the postmortem artifact — plus the Sink.tee fan-out
   and the flow-chain extension of the trace-event validator they ride
   on. *)

module Json = Rtnet_util.Json
module Sink = Rtnet_telemetry.Sink
module Trace_event = Rtnet_telemetry.Trace_event
module Channel = Rtnet_channel.Channel
module Message = Rtnet_workload.Message
module Fault_plan = Rtnet_channel.Fault_plan
module Topo = Rtnet_topology.Topo
module Admit = Rtnet_topology.Admit
module Driver = Rtnet_topology.Driver
module Ring = Rtnet_obs.Ring
module Flight = Rtnet_obs.Flight
module Causal = Rtnet_obs.Causal
module Postmortem = Rtnet_obs.Postmortem
module Perf = Rtnet_obs.Perf

let ms = 1_000_000

let msg ~uid ~cls_id ~arrival =
  {
    Message.uid;
    cls =
      {
        Message.cls_id;
        cls_name = Printf.sprintf "c%d" cls_id;
        cls_source = 0;
        cls_bits = 1000;
        cls_deadline = 50_000;
        cls_burst = 1;
        cls_window = 100_000;
      };
    arrival;
  }

(* -------------------- ring -------------------- *)

let test_ring_basics () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check int) "empty" 0 (Ring.length r);
  for i = 1 to 3 do
    Ring.push r ~kind:0 ~t0:i ~t1:(i + 1) ~a:i ~b:0
  done;
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "recorded" 3 (Ring.recorded r);
  Alcotest.(check int) "nothing overwritten" 0 (Ring.overwritten r);
  let seen = ref [] in
  Ring.iter_oldest_first r (fun ~kind:_ ~t0 ~t1:_ ~a:_ ~b:_ ->
      seen := t0 :: !seen);
  Alcotest.(check (list int)) "push order" [ 1; 2; 3 ] (List.rev !seen)

let test_ring_wraps () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 8 do
    Ring.push r ~kind:i ~t0:i ~t1:i ~a:0 ~b:0
  done;
  Alcotest.(check int) "holds capacity" 3 (Ring.length r);
  Alcotest.(check int) "recorded is monotone" 8 (Ring.recorded r);
  Alcotest.(check int) "overwritten" 5 (Ring.overwritten r);
  let seen = ref [] in
  Ring.iter_oldest_first r (fun ~kind:_ ~t0 ~t1:_ ~a:_ ~b:_ ->
      seen := t0 :: !seen);
  (* The most recent [capacity] events survive, oldest first. *)
  Alcotest.(check (list int)) "last three" [ 6; 7; 8 ] (List.rev !seen);
  (match Ring.create ~capacity:0 with
  | (_ : Ring.t) -> Alcotest.fail "zero capacity accepted"
  | exception Invalid_argument _ -> ())

(* -------------------- flight recorder -------------------- *)

let test_flight_records_and_dumps () =
  let f = Flight.create ~capacity:8 ~segment:"segA" () in
  let s = Flight.sink f in
  Alcotest.(check bool) "sink enabled" true s.Sink.enabled;
  s.Sink.slot ~now:0 ~next_free:512 ~resolution:Channel.Idle;
  s.Sink.enqueue ~now:600 ~msg:(msg ~uid:7 ~cls_id:2 ~arrival:600);
  s.Sink.complete ~msg:(msg ~uid:7 ~cls_id:2 ~arrival:600) ~start:1024
    ~finish:2048;
  s.Sink.drop ~msg:(msg ~uid:9 ~cls_id:3 ~arrival:700);
  s.Sink.epoch ~start:100 ~finish:200;
  (* Searches and engine steps are not black-box material. *)
  s.Sink.search ~tree:Sink.Time_tree ~start:0 ~finish:10 ~sent:true;
  s.Sink.engine_event ~time:42;
  Alcotest.(check int) "five events recorded" 5 (Flight.recorded f);
  match Flight.to_json f with
  | Json.Obj fields ->
    Alcotest.(check string)
      "segment label" "segA"
      (match List.assoc "segment" fields with
      | Json.String s -> s
      | _ -> "?");
    let events =
      match List.assoc "events" fields with Json.List l -> l | _ -> []
    in
    let kinds =
      List.map
        (fun e ->
          match e with
          | Json.Obj fs -> (
            match List.assoc "k" fs with Json.String k -> k | _ -> "?")
          | _ -> "?")
        events
    in
    Alcotest.(check (list string))
      "event kinds in push order"
      [ "idle"; "enqueue"; "complete"; "drop"; "epoch" ]
      kinds
  | _ -> Alcotest.fail "flight dump is not an object"

(* -------------------- Sink.tee -------------------- *)

let counting_sink hits =
  Sink.create
    ~slot:(fun ~now:_ ~next_free:_ ~resolution:_ -> incr hits)
    ~enqueue:(fun ~now:_ ~msg:_ -> incr hits)
    ~complete:(fun ~msg:_ ~start:_ ~finish:_ -> incr hits)
    ~drop:(fun ~msg:_ -> incr hits)
    ~epoch:(fun ~start:_ ~finish:_ -> incr hits)
    ()

let test_tee_fans_out () =
  let a = ref 0 and b = ref 0 in
  let t = Sink.tee (counting_sink a) (counting_sink b) in
  Alcotest.(check bool) "tee of enabled sinks is enabled" true t.Sink.enabled;
  t.Sink.slot ~now:0 ~next_free:1 ~resolution:Channel.Idle;
  t.Sink.enqueue ~now:0 ~msg:(msg ~uid:1 ~cls_id:0 ~arrival:0);
  t.Sink.drop ~msg:(msg ~uid:1 ~cls_id:0 ~arrival:0);
  Alcotest.(check int) "left saw all three" 3 !a;
  Alcotest.(check int) "right saw all three" 3 !b

let test_tee_elides_disabled () =
  let a = ref 0 in
  let live = counting_sink a in
  Alcotest.(check bool) "tee null null is disabled" false
    (Sink.tee Sink.null Sink.null).Sink.enabled;
  let left = Sink.tee live Sink.null in
  let right = Sink.tee Sink.null live in
  left.Sink.drop ~msg:(msg ~uid:1 ~cls_id:0 ~arrival:0);
  right.Sink.drop ~msg:(msg ~uid:1 ~cls_id:0 ~arrival:0);
  Alcotest.(check int) "both single-operand tees forward" 2 !a

(* -------------------- flow validation -------------------- *)

let test_flow_chain_validates () =
  let t = Trace_event.create () in
  Trace_event.flow_start t ~pid:0 ~tid:10 ~name:"flow1#3" ~cat:"chain" ~ts:100
    ~id:1 ();
  Trace_event.flow_step t ~pid:2 ~tid:11 ~name:"flow1#3" ~cat:"chain" ~ts:200
    ~id:1 ();
  Trace_event.flow_end t ~pid:4 ~tid:12 ~name:"flow1#3" ~cat:"chain" ~ts:300
    ~id:1 ();
  match Trace_event.validate (Trace_event.to_json t) with
  | Ok n -> Alcotest.(check int) "three flow events checked" 3 n
  | Error e -> Alcotest.fail e

let expect_invalid label j =
  match Trace_event.validate j with
  | Ok _ -> Alcotest.fail (label ^ ": accepted an invalid flow chain")
  | Error _ -> ()

let test_flow_chain_rejects () =
  (* Unterminated: s without f. *)
  let t = Trace_event.create () in
  Trace_event.flow_start t ~pid:0 ~tid:10 ~name:"x" ~cat:"chain" ~ts:0 ~id:1 ();
  expect_invalid "unterminated" (Trace_event.to_json t);
  (* Opening with a step. *)
  let t = Trace_event.create () in
  Trace_event.flow_step t ~pid:0 ~tid:10 ~name:"x" ~cat:"chain" ~ts:0 ~id:2 ();
  Trace_event.flow_end t ~pid:0 ~tid:10 ~name:"x" ~cat:"chain" ~ts:1 ~id:2 ();
  expect_invalid "no start" (Trace_event.to_json t);
  (* Backwards time. *)
  let t = Trace_event.create () in
  Trace_event.flow_start t ~pid:0 ~tid:10 ~name:"x" ~cat:"chain" ~ts:50 ~id:3 ();
  Trace_event.flow_end t ~pid:0 ~tid:10 ~name:"x" ~cat:"chain" ~ts:40 ~id:3 ();
  expect_invalid "backwards ts" (Trace_event.to_json t)

(* -------------------- driver integration -------------------- *)

(* A tight 3-segment tree whose bridge ingress stations both crash:
   degraded-mode shedding guarantees a failure verdict, which is what
   the postmortem pipeline needs to exercise end to end. *)
let failing_elaboration () =
  let topo =
    Topo.tree ~name:"obs-tree" ~segments:3 ~fanout:2 ~sources:4 ~load:0.2
      ~deadline_windows:2.0 ()
  in
  let crash s =
    Fault_plan.crash ~source:s ~from_:100_000 ~until:2_500_000
  in
  let plan =
    { (crash 4) with Fault_plan.sp_crashes =
        (crash 4).Fault_plan.sp_crashes @ (crash 5).Fault_plan.sp_crashes }
  in
  let topo =
    match Topo.with_faults topo [ ("seg0", plan) ] with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  match Admit.elaborate topo with
  | Ok e -> e
  | Error e -> Alcotest.fail e

let run_with_flights ~domains e =
  let flights = ref [] in
  let sink_for ~index ~segment =
    let f = Flight.create ~segment () in
    flights := (index, f) :: !flights;
    Flight.sink f
  in
  match Driver.run_seeded ~domains ~sink_for e ~seed:5 ~horizon:(3 * ms) with
  | Error e -> Alcotest.fail e
  | Ok res -> (res, List.map snd (List.sort compare !flights))

let test_postmortem_roundtrip () =
  let e = failing_elaboration () in
  let res, flights = run_with_flights ~domains:1 e in
  let trigger =
    match Postmortem.trigger_of_result res with
    | Some t -> t
    | None -> Alcotest.fail "seeded fault run produced a clean verdict"
  in
  let pm =
    Postmortem.build ~trigger ~topology:"obs-tree" ~seed:5 ~fault_seed:99
      ~horizon:(3 * ms) ~result:res ~flights
      ~repro:("note", "fingerprint") ()
  in
  let j = Json.to_string (Postmortem.to_json pm) in
  match Postmortem.of_json (Result.get_ok (Json.parse j)) with
  | Error err -> Alcotest.fail err
  | Ok pm' ->
    Alcotest.(check string)
      "round-trip is canonical" j
      (Json.to_string (Postmortem.to_json pm'));
    Alcotest.(check string)
      "fingerprint preserved" res.Driver.r_fingerprint pm'.Postmortem.pm_fingerprint;
    Alcotest.(check bool)
      "repro cross-link preserved" true
      (pm'.Postmortem.pm_repro = Some ("note", "fingerprint"))

let test_sharded_flight_determinism () =
  (* The tentpole's domain-sharding contract: per-segment recorders
     attached through sink_for must dump identically whether the
     wavefront ran on one domain or three, and so must the postmortem
     built from them. *)
  let e = failing_elaboration () in
  let res1, fl1 = run_with_flights ~domains:1 e in
  let res3, fl3 = run_with_flights ~domains:3 e in
  Alcotest.(check string)
    "fingerprints agree" res1.Driver.r_fingerprint res3.Driver.r_fingerprint;
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        ("flight dump " ^ Flight.segment a)
        (Json.to_string (Flight.to_json a))
        (Json.to_string (Flight.to_json b)))
    fl1 fl3;
  let pm domains res flights =
    let trigger =
      match Postmortem.trigger_of_result res with
      | Some t -> t
      | None -> Alcotest.fail (Printf.sprintf "clean at domains=%d" domains)
    in
    Json.to_string
      (Postmortem.to_json
         (Postmortem.build ~trigger ~topology:"obs-tree" ~seed:5 ~fault_seed:99
            ~horizon:(3 * ms) ~result:res ~flights ()))
  in
  Alcotest.(check string)
    "postmortems byte-identical" (pm 1 res1 fl1) (pm 3 res3 fl3)

let test_causal_stitch () =
  let e = failing_elaboration () in
  let res, _ = run_with_flights ~domains:1 e in
  let flows = Trace_event.create () in
  let stitched =
    Causal.stitch ~into:flows ~seg_pid:(fun ~segment:_ -> 0)
      ~chains:res.Driver.r_chains
  in
  Alcotest.(check bool) "some chains stitched" true (stitched > 0);
  match Trace_event.validate (Trace_event.to_json flows) with
  | Ok n -> Alcotest.(check bool) "flow events checked" true (n >= 2 * stitched)
  | Error err -> Alcotest.fail err

(* -------------------- perf counters -------------------- *)

let test_perf_roundtrip () =
  let c = Perf.start ~phase:"prepare" () in
  Perf.phase c "cells";
  Perf.phase c "report";
  let p = Perf.finish c ~slots:1_000_000 in
  Alcotest.(check int) "three phases" 3 (List.length p.Perf.p_phases);
  Alcotest.(check (list string))
    "phase order"
    [ "prepare"; "cells"; "report" ]
    (List.map (fun ph -> ph.Perf.ph_name) p.Perf.p_phases);
  Alcotest.(check bool) "throughput positive" true (p.Perf.p_slots_per_sec > 0.);
  let j = Json.to_string (Perf.to_json p) in
  match Perf.of_json (Result.get_ok (Json.parse j)) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    Alcotest.(check string)
      "canonical round-trip" j
      (Json.to_string (Perf.to_json p'))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
        Alcotest.test_case "flight records and dumps" `Quick
          test_flight_records_and_dumps;
        Alcotest.test_case "tee fans out" `Quick test_tee_fans_out;
        Alcotest.test_case "tee elides disabled" `Quick
          test_tee_elides_disabled;
        Alcotest.test_case "flow chain validates" `Quick
          test_flow_chain_validates;
        Alcotest.test_case "flow chain rejects" `Quick test_flow_chain_rejects;
        Alcotest.test_case "postmortem round-trip" `Quick
          test_postmortem_roundtrip;
        Alcotest.test_case "sharded flight determinism" `Quick
          test_sharded_flight_determinism;
        Alcotest.test_case "causal stitch validates" `Quick test_causal_stitch;
        Alcotest.test_case "perf round-trip" `Quick test_perf_roundtrip;
      ] );
  ]
