(* Aggregated alcotest runner: one suite per library module. *)

let () =
  Alcotest.run "rtnet"
    (Test_int_math.suite @ Test_prng.suite @ Test_table.suite
   @ Test_event_queue.suite @ Test_engine.suite @ Test_phy.suite
   @ Test_channel.suite @ Test_message.suite @ Test_arrival.suite
   @ Test_instance.suite @ Test_scenarios.suite @ Test_edf_queue.suite
   @ Test_np_edf.suite @ Test_summary.suite @ Test_run.suite @ Test_xi.suite
   @ Test_multi_tree.suite @ Test_tree_search.suite @ Test_ddcr_params.suite
   @ Test_ddcr.suite @ Test_feasibility.suite @ Test_dimensioning.suite
   @ Test_baselines.suite @ Test_ddcr_trace.suite @ Test_faults.suite @ Test_multi_bus.suite @ Test_cos.suite @ Test_np_edf_fc.suite @ Test_harness.suite @ Test_conformance.suite @ Test_xi_arb.suite @ Test_analysis.suite @ Test_json.suite @ Test_campaign.suite @ Test_fault_plan.suite
   @ Test_telemetry.suite @ Test_chaos.suite @ Test_model.suite
   @ Test_topology.suite @ Test_obs.suite @ Test_admit.suite)
