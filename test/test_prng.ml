module Prng = Rtnet_util.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let test_int_range () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "n <= 0" (Invalid_argument "Prng.int: n <= 0")
    (fun () -> ignore (Prng.int g 0))

let test_int_covers () =
  let g = Prng.create 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 8) <- true
  done;
  Alcotest.(check bool) "all residues reached" true
    (Array.for_all Fun.id seen)

let test_float_range () =
  let g = Prng.create 13 in
  for _ = 1 to 1000 do
    let v = Prng.float g 3.5 in
    Alcotest.(check bool) "0 <= v < 3.5" true (v >= 0. && v < 3.5)
  done

let test_exponential_positive () =
  let g = Prng.create 17 in
  let sum = ref 0. in
  for _ = 1 to 2000 do
    let v = Prng.exponential g 2.0 in
    Alcotest.(check bool) "positive" true (v >= 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. 2000. in
  Alcotest.(check bool) "mean near 1/rate" true (mean > 0.4 && mean < 0.6)

let test_split_independent () =
  let g = Prng.create 23 in
  let h = Prng.split g in
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 g = Prng.bits64 h then incr overlap
  done;
  Alcotest.(check bool) "split stream differs" true (!overlap < 4)

let test_derive_deterministic () =
  Alcotest.(check int) "pure function" (Prng.derive 42 3) (Prng.derive 42 3);
  Alcotest.(check bool) "indices separate" true
    (Prng.derive 42 0 <> Prng.derive 42 1);
  Alcotest.(check bool) "seeds separate" true
    (Prng.derive 1 0 <> Prng.derive 2 0);
  Alcotest.(check bool) "non-negative" true (Prng.derive 42 5 >= 0);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.derive: negative index") (fun () ->
      ignore (Prng.derive 42 (-1)))

let test_derive_streams_independent () =
  (* Streams created from sibling derived seeds should not overlap. *)
  let a = Prng.create (Prng.derive 42 0) in
  let b = Prng.create (Prng.derive 42 1) in
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr overlap
  done;
  Alcotest.(check bool) "derived streams differ" true (!overlap < 4)

let test_stream_path () =
  let draw g = Prng.bits64 g in
  Alcotest.(check int64) "same path, same stream"
    (draw (Prng.stream ~seed:7 ~path:[ 1; 2; 3 ]))
    (draw (Prng.stream ~seed:7 ~path:[ 1; 2; 3 ]));
  Alcotest.(check int64) "empty path is the root stream"
    (draw (Prng.create 7))
    (draw (Prng.stream ~seed:7 ~path:[]));
  Alcotest.(check bool) "path order matters" true
    (draw (Prng.stream ~seed:7 ~path:[ 1; 2 ])
    <> draw (Prng.stream ~seed:7 ~path:[ 2; 1 ]));
  Alcotest.(check bool) "prefix differs from extension" true
    (draw (Prng.stream ~seed:7 ~path:[ 1 ])
    <> draw (Prng.stream ~seed:7 ~path:[ 1; 0 ]))

let test_shuffle_permutation () =
  let g = Prng.create 29 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_coordinate_streams_independent =
  (* The chaos generator keys candidate [i]'s fault-event stream as
     [stream ~seed ~path:[tag; i]]: two candidates differing only in
     their replicate index must share no stream prefix, or a fleet of
     "independent" candidates would silently explore correlated fault
     schedules.  Check the first draws of sibling coordinates across
     random seeds and index pairs. *)
  QCheck.Test.make ~name:"sibling coordinate streams share no prefix"
    ~count:100
    QCheck.(triple small_int small_nat small_nat)
    (fun (seed, i, d) ->
      let j = i + 1 + d in
      let tag = 0xC4A0 in
      let prefix path =
        let g = Prng.stream ~seed ~path in
        List.init 8 (fun _ -> Prng.bits64 g)
      in
      match (prefix [ tag; i ], prefix [ tag; j ]) with
      | a :: _, b :: _ -> a <> b
      | _ -> false)

let prop_bool_balanced =
  QCheck.Test.make ~name:"bool roughly balanced" ~count:20 QCheck.small_int
    (fun seed ->
      let g = Prng.create seed in
      let heads = ref 0 in
      for _ = 1 to 1000 do
        if Prng.bool g then incr heads
      done;
      !heads > 400 && !heads < 600)

let suite =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "int range" `Quick test_int_range;
        Alcotest.test_case "int covers" `Quick test_int_covers;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "exponential" `Quick test_exponential_positive;
        Alcotest.test_case "split" `Quick test_split_independent;
        Alcotest.test_case "derive" `Quick test_derive_deterministic;
        Alcotest.test_case "derive streams" `Quick
          test_derive_streams_independent;
        Alcotest.test_case "stream path" `Quick test_stream_path;
        Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        QCheck_alcotest.to_alcotest prop_bool_balanced;
        QCheck_alcotest.to_alcotest prop_coordinate_streams_independent;
      ] );
  ]
