module Tree_search = Rtnet_core.Tree_search
module Xi = Rtnet_core.Xi

let cost ~m ~t active = Tree_search.cost (Tree_search.run ~m ~t ~active)

let test_empty_tree () =
  let tr = Tree_search.run ~m:2 ~t:8 ~active:[] in
  Alcotest.(check int) "one empty slot" 1 (Tree_search.cost tr);
  Alcotest.(check int) "single probe" 1 (List.length tr)

let test_single_active () =
  let tr = Tree_search.run ~m:2 ~t:8 ~active:[ 5 ] in
  Alcotest.(check int) "free transmission" 0 (Tree_search.cost tr);
  Alcotest.(check (list int)) "isolated" [ 5 ] (Tree_search.isolated tr)

let test_two_adjacent_worst () =
  (* Both actives under the deepest common subtree: full descent. *)
  Alcotest.(check int) "adjacent leaves cost eq5" (Xi.eq5 ~m:2 ~t:8)
    (cost ~m:2 ~t:8 [ 0; 1 ]);
  Alcotest.(check int) "far apart is cheap" 1 (cost ~m:2 ~t:8 [ 0; 7 ])

let test_left_to_right_order () =
  let tr = Tree_search.run ~m:2 ~t:8 ~active:[ 6; 1; 4 ] in
  Alcotest.(check (list int)) "transmissions left to right" [ 1; 4; 6 ]
    (Tree_search.isolated tr)

let test_probe_trace_structure () =
  let tr = Tree_search.run ~m:2 ~t:4 ~active:[ 0; 1 ] in
  (* root collision, left subtree collision, leaf 0, leaf 1, right
     subtree empty. *)
  let outcomes =
    List.map
      (fun s ->
        match s.Tree_search.outcome with
        | Tree_search.Empty -> "e"
        | Tree_search.Isolated _ -> "i"
        | Tree_search.Split -> "s"
        | Tree_search.Leaf_collision _ -> "c")
      tr
  in
  Alcotest.(check (list string)) "dfs order" [ "s"; "s"; "i"; "i"; "e" ] outcomes

let test_leaf_collision_counts_once () =
  (* Two occupants of one leaf: the leaf probe collides and is
     abandoned (ties go to the static search in the protocol). *)
  let tr = Tree_search.run ~m:2 ~t:4 ~active:[ 2; 2 ] in
  let collisions =
    List.filter
      (fun s ->
        match s.Tree_search.outcome with
        | Tree_search.Leaf_collision _ -> true
        | Tree_search.Empty | Tree_search.Isolated _ | Tree_search.Split -> false)
      tr
  in
  Alcotest.(check int) "one leaf collision" 1 (List.length collisions);
  Alcotest.(check (list int)) "nobody isolated" [] (Tree_search.isolated tr)

let test_invalid () =
  Alcotest.check_raises "bad m" (Invalid_argument "Tree_search.run: m < 2")
    (fun () -> ignore (Tree_search.run ~m:1 ~t:4 ~active:[]));
  Alcotest.check_raises "bad t"
    (Invalid_argument "Tree_search.run: t must be a power of m") (fun () ->
      ignore (Tree_search.run ~m:2 ~t:6 ~active:[]));
  Alcotest.check_raises "leaf range"
    (Invalid_argument "Tree_search.run: leaf out of range") (fun () ->
      ignore (Tree_search.run ~m:2 ~t:4 ~active:[ 4 ]))

let test_exhaustive_brute_force_matches_xi () =
  (* Ground truth for P1: over every subset of a small tree, the worst
     search cost is exactly ξ. *)
  let rec subsets lo t k =
    if k = 0 then [ [] ]
    else if lo >= t then []
    else
      List.map (fun s -> lo :: s) (subsets (lo + 1) t (k - 1))
      @ subsets (lo + 1) t k
  in
  List.iter
    (fun (m, t) ->
      let tab = Xi.table ~m ~t in
      for k = 0 to t do
        let worst =
          List.fold_left
            (fun acc s -> max acc (cost ~m ~t s))
            0 (subsets 0 t k)
        in
        Alcotest.(check int)
          (Printf.sprintf "brute m=%d t=%d k=%d" m t k)
          tab.(k) worst
      done)
    [ (2, 8); (2, 16); (3, 9); (4, 16) ]

let prop_isolates_everyone =
  QCheck.Test.make ~name:"search isolates every distinct active leaf"
    ~count:300
    QCheck.(pair (int_range 0 100000) (int_range 0 16))
    (fun (seed, k) ->
      let t = 16 and m = 2 in
      let rng = Rtnet_util.Prng.create seed in
      let leaves = Array.init t Fun.id in
      Rtnet_util.Prng.shuffle rng leaves;
      let active = List.sort compare (Array.to_list (Array.sub leaves 0 k)) in
      let tr = Tree_search.run ~m ~t ~active in
      Tree_search.isolated tr = active)

let prop_cost_invariant_under_m =
  (* For any subset, quaternary search never beats... rather: cost is
     bounded by xi for every branching degree. *)
  QCheck.Test.make ~name:"cost <= xi for m in {2,4}" ~count:300
    QCheck.(pair (int_range 0 100000) (int_range 0 64))
    (fun (seed, k) ->
      let t = 64 in
      let rng = Rtnet_util.Prng.create seed in
      let leaves = Array.init t Fun.id in
      Rtnet_util.Prng.shuffle rng leaves;
      let active = Array.to_list (Array.sub leaves 0 k) in
      cost ~m:2 ~t active <= Xi.exact ~m:2 ~t ~k
      && cost ~m:4 ~t active <= Xi.exact ~m:4 ~t ~k)

let suite =
  [
    ( "tree_search",
      [
        Alcotest.test_case "empty tree" `Quick test_empty_tree;
        Alcotest.test_case "single active" `Quick test_single_active;
        Alcotest.test_case "adjacent worst" `Quick test_two_adjacent_worst;
        Alcotest.test_case "left-to-right" `Quick test_left_to_right_order;
        Alcotest.test_case "probe structure" `Quick test_probe_trace_structure;
        Alcotest.test_case "leaf collision" `Quick test_leaf_collision_counts_once;
        Alcotest.test_case "invalid args" `Quick test_invalid;
        Alcotest.test_case "brute force = xi" `Slow
          test_exhaustive_brute_force_matches_xi;
        QCheck_alcotest.to_alcotest prop_isolates_everyone;
        QCheck_alcotest.to_alcotest prop_cost_invariant_under_m;
      ] );
  ]
