(* Fault-plan subsystem: spec validation and determinism, and CSMA/DDCR
   under every builtin plan — mutual exclusion among live synced
   sources always holds, and a desynchronized station re-enters within
   one tree epoch of the fault clearing. *)

module Channel = Rtnet_channel.Channel
module Fault_plan = Rtnet_channel.Fault_plan
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Run = Rtnet_stats.Run
module Run_json = Rtnet_stats.Run_json
module Json = Rtnet_util.Json
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Trace_check = Rtnet_analysis.Trace_check
module Diagnostic = Rtnet_analysis.Diagnostic

let ms = 1_000_000

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* -------------------------------------------------------------- specs *)

let test_validate_rejects () =
  let bad spec msg =
    match Fault_plan.validate spec with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("accepted " ^ msg)
  in
  bad (Fault_plan.iid 1.5) "iid rate above 1";
  bad (Fault_plan.iid (-0.1)) "negative iid rate";
  bad (Fault_plan.iid Float.nan) "NaN iid rate";
  bad (Fault_plan.misperceive 2.0) "misperception above 1";
  bad
    (Fault_plan.gilbert_elliott ~p_enter:1.5 ~p_exit:0.1 ~rate_good:0.0
       ~rate_bad:0.5)
    "p_enter above 1";
  bad (Fault_plan.crash ~source:0 ~from_:100 ~until:100) "empty crash window";
  bad (Fault_plan.crash ~source:(-1) ~from_:0 ~until:10) "negative source";
  (match
     Fault_plan.validate ~horizon:1000
       (Fault_plan.crash ~source:0 ~from_:500 ~until:2000)
   with
  | Error e ->
    Alcotest.(check bool) "mentions rejoin" true (contains ~sub:"never rejoin" e)
  | Ok () -> Alcotest.fail "accepted window past the horizon");
  Alcotest.check_raises "create validates"
    (Invalid_argument "Fault_plan.create: garble rate 1.5 out of [0, 1]")
    (fun () -> ignore (Fault_plan.create ~seed:1 (Fault_plan.iid 1.5)))

let test_validate_rejects_degenerate_ge () =
  (* Transition probabilities of exactly 0 or 1 make the Gilbert–
     Elliott chain degenerate — stuck in one state, or alternating
     deterministically every slot — which silently turns a "bursty
     noise" experiment into something else entirely.  Construction
     must reject all four endpoints with a diagnostic that says why. *)
  let ge ~p_enter ~p_exit =
    Fault_plan.gilbert_elliott ~p_enter ~p_exit ~rate_good:0.01 ~rate_bad:0.8
  in
  let degenerate what spec =
    match Fault_plan.validate spec with
    | Error e ->
      Alcotest.(check bool)
        (what ^ " diagnosed as degenerate")
        true (contains ~sub:"degenerate" e)
    | Ok () -> Alcotest.fail ("accepted " ^ what)
  in
  degenerate "p_enter = 0" (ge ~p_enter:0.0 ~p_exit:0.2);
  degenerate "p_enter = 1" (ge ~p_enter:1.0 ~p_exit:0.2);
  degenerate "p_exit = 0" (ge ~p_enter:0.02 ~p_exit:0.0);
  degenerate "p_exit = 1" (ge ~p_enter:0.02 ~p_exit:1.0);
  (* The diagnostic points at the iid escape hatch for the
     single-state process the caller may actually have wanted. *)
  (match Fault_plan.validate (ge ~p_enter:0.0 ~p_exit:0.2) with
  | Error e ->
    Alcotest.(check bool) "suggests iid" true (contains ~sub:"iid" e)
  | Ok () -> Alcotest.fail "accepted p_enter = 0");
  (* Interior probabilities stay accepted, including extremes close
     to the endpoints. *)
  match Fault_plan.validate (ge ~p_enter:0.001 ~p_exit:0.999) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("rejected interior probabilities: " ^ e)

let test_validate_rejects_overlapping_crashes () =
  let w source from_ until =
    Fault_plan.crash ~source ~from_ ~until
  in
  let overlapping =
    Fault_plan.compose (w 1 100 300) (w 1 200 400)
  in
  (match Fault_plan.validate overlapping with
  | Error e ->
    Alcotest.(check bool) "names the windows" true (contains ~sub:"overlap" e)
  | Ok () -> Alcotest.fail "accepted overlapping windows of one source");
  (* Same intervals on different sources are independent outages. *)
  (match Fault_plan.validate (Fault_plan.compose (w 1 100 300) (w 2 200 400)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("rejected distinct sources: " ^ e));
  (* Touching windows ([a, b) then [b, c)) do not overlap. *)
  match Fault_plan.validate (Fault_plan.compose (w 1 100 200) (w 1 200 300)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("rejected adjacent windows: " ^ e)

let test_json_codec_error_paths () =
  (* spec_of_json validates what it decodes: a well-formed JSON
     document carrying out-of-range or inconsistent parameters must
     come back as a construction diagnostic, never as an Ok spec that
     explodes later inside a worker. *)
  let decode s = Result.bind (Json.parse s) Fault_plan.spec_of_json in
  let rejected what ~diag s =
    match decode s with
    | Error e ->
      Alcotest.(check bool)
        (what ^ ": diagnostic mentions " ^ diag)
        true (contains ~sub:diag e)
    | Ok _ -> Alcotest.fail ("decoded " ^ what)
  in
  rejected "unknown garble kind" ~diag:"unknown garble kind"
    {|{"garble":{"kind":"solar-flare","rate":0.1}}|};
  rejected "negative crash window" ~diag:"empty"
    {|{"crashes":[{"source":1,"from":500,"until":400}]}|};
  rejected "overlapping crash windows" ~diag:"overlap"
    {|{"crashes":[{"source":1,"from":100,"until":300},
                  {"source":1,"from":200,"until":400}]}|};
  rejected "degenerate GE parameters" ~diag:"degenerate"
    {|{"garble":{"kind":"gilbert_elliott","p_enter":0.0,"p_exit":0.2,
                 "rate_good":0.01,"rate_bad":0.8}}|};
  rejected "garble rate above 1" ~diag:"out of"
    {|{"garble":{"kind":"iid","rate":1.5}}|};
  (* And a valid document still decodes. *)
  match
    decode
      {|{"garble":{"kind":"iid","rate":0.1},"misperception":0.05,
         "crashes":[{"source":0,"from":10,"until":20}]}|}
  with
  | Ok spec ->
    Alcotest.(check string) "decoded label" "iid0.10+mp0.05+cr0@10-20"
      (Fault_plan.label spec)
  | Error e -> Alcotest.fail e

(* ------------------------------------------- mutation / merge helpers *)

let test_atoms_merge_roundtrip () =
  let spec =
    Fault_plan.compose
      (Fault_plan.compose (Fault_plan.iid 0.1) (Fault_plan.misperceive 0.05))
      (Fault_plan.compose
         (Fault_plan.crash ~source:0 ~from_:10 ~until:20)
         (Fault_plan.crash ~source:1 ~from_:30 ~until:40))
  in
  let atoms = Fault_plan.atoms spec in
  Alcotest.(check int) "one atom per event" 4 (List.length atoms);
  Alcotest.(check int) "event_count agrees" 4 (Fault_plan.event_count spec);
  Alcotest.(check string) "merge inverts atoms"
    (Json.to_string (Fault_plan.spec_to_json spec))
    (Json.to_string (Fault_plan.spec_to_json (Fault_plan.merge atoms)));
  Alcotest.(check int) "clean plan has no events" 0
    (Fault_plan.event_count Fault_plan.none)

let test_scale_severity () =
  let spec =
    Fault_plan.compose
      (Fault_plan.compose
         (Fault_plan.gilbert_elliott ~p_enter:0.02 ~p_exit:0.2 ~rate_good:0.2
            ~rate_bad:0.8)
         (Fault_plan.misperceive 0.1))
      (Fault_plan.crash ~source:0 ~from_:10 ~until:20)
  in
  let half = Fault_plan.scale_severity spec 0.5 in
  (match half.Fault_plan.sp_garble with
  | Some (Fault_plan.Gilbert_elliott { p_enter; p_exit; rate_good; rate_bad })
    ->
    (* Rates scale; the burst structure (transition probabilities) is
       a separate shrinking axis and must not drift. *)
    Alcotest.(check (float 1e-9)) "rate_good halved" 0.1 rate_good;
    Alcotest.(check (float 1e-9)) "rate_bad halved" 0.4 rate_bad;
    Alcotest.(check (float 1e-9)) "p_enter untouched" 0.02 p_enter;
    Alcotest.(check (float 1e-9)) "p_exit untouched" 0.2 p_exit
  | _ -> Alcotest.fail "garble shape changed");
  Alcotest.(check (float 1e-9)) "misperception halved" 0.05
    half.Fault_plan.sp_misperception;
  Alcotest.(check bool) "crash windows untouched" true
    (half.Fault_plan.sp_crashes = spec.Fault_plan.sp_crashes);
  (* Scaling never leaves the valid range. *)
  match Fault_plan.validate (Fault_plan.scale_severity spec 0.0) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("zero-scaled plan invalid: " ^ e)

let test_split_crash () =
  let w = { Fault_plan.cw_source = 2; cw_from = 100; cw_until = 200 } in
  (match Fault_plan.split_crash w with
  | Some (l, r) ->
    Alcotest.(check int) "left starts at from" 100 l.Fault_plan.cw_from;
    Alcotest.(check int) "right ends at until" 200 r.Fault_plan.cw_until;
    Alcotest.(check int) "halves meet" l.Fault_plan.cw_until
      r.Fault_plan.cw_from;
    Alcotest.(check bool) "both halves non-empty" true
      (l.Fault_plan.cw_from < l.Fault_plan.cw_until
      && r.Fault_plan.cw_from < r.Fault_plan.cw_until)
  | None -> Alcotest.fail "refused to split a 100-bit window");
  match
    Fault_plan.split_crash { Fault_plan.cw_source = 0; cw_from = 5; cw_until = 6 }
  with
  | None -> ()
  | Some _ -> Alcotest.fail "split a 1-bit window"

let test_validate_accepts_builtins () =
  let ok spec =
    match Fault_plan.validate ~horizon:(40 * ms) spec with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("rejected " ^ Fault_plan.label spec ^ ": " ^ e)
  in
  ok Fault_plan.none;
  ok (Fault_plan.iid 0.15);
  ok
    (Fault_plan.gilbert_elliott ~p_enter:0.02 ~p_exit:0.2 ~rate_good:0.01
       ~rate_bad:0.8);
  ok (Fault_plan.misperceive 0.05);
  ok (Fault_plan.crash ~source:1 ~from_:(5 * ms) ~until:(12 * ms))

let test_json_roundtrip () =
  let spec =
    Fault_plan.compose
      (Fault_plan.compose
         (Fault_plan.gilbert_elliott ~p_enter:0.02 ~p_exit:0.2 ~rate_good:0.01
            ~rate_bad:0.8)
         (Fault_plan.misperceive 0.03))
      (Fault_plan.crash ~source:2 ~from_:(3 * ms) ~until:(7 * ms))
  in
  match Fault_plan.spec_of_json (Fault_plan.spec_to_json spec) with
  | Ok spec' ->
    Alcotest.(check string) "roundtrips" (Fault_plan.label spec)
      (Fault_plan.label spec');
    Alcotest.(check string) "json stable"
      (Json.to_string (Fault_plan.spec_to_json spec))
      (Json.to_string (Fault_plan.spec_to_json spec'))
  | Error e -> Alcotest.fail e

let test_labels () =
  Alcotest.(check string) "clean" "clean" (Fault_plan.label Fault_plan.none);
  Alcotest.(check string) "iid" "iid0.15" (Fault_plan.label (Fault_plan.iid 0.15));
  Alcotest.(check string) "composed" "mp0.05+cr1@100-200"
    (Fault_plan.label
       (Fault_plan.compose
          (Fault_plan.misperceive 0.05)
          (Fault_plan.crash ~source:1 ~from_:100 ~until:200)))

let test_compose_overlays () =
  let a = Fault_plan.compose (Fault_plan.iid 0.1) (Fault_plan.misperceive 0.2) in
  let b = Fault_plan.compose a (Fault_plan.crash ~source:0 ~from_:0 ~until:10) in
  Alcotest.(check bool) "keeps garble" true (b.Fault_plan.sp_garble <> None);
  Alcotest.(check (float 1e-9)) "keeps misperception" 0.2
    b.Fault_plan.sp_misperception;
  Alcotest.(check int) "keeps crashes" 1
    (List.length b.Fault_plan.sp_crashes);
  Alcotest.(check bool) "local faults" true (Fault_plan.has_local_faults b);
  Alcotest.(check bool) "iid alone is global" false
    (Fault_plan.has_local_faults (Fault_plan.iid 0.3))

let test_draws_deterministic () =
  let spec =
    Fault_plan.compose
      (Fault_plan.gilbert_elliott ~p_enter:0.1 ~p_exit:0.3 ~rate_good:0.05
         ~rate_bad:0.9)
      (Fault_plan.misperceive 0.1)
  in
  let sample () =
    let p = Fault_plan.create ~seed:42 spec in
    List.init 200 (fun i ->
        Fault_plan.tick p;
        (Fault_plan.wire_garbles p ~now:i, Fault_plan.misperceives p ~source:1 ~now:i))
  in
  Alcotest.(check bool) "same seed, same draws" true (sample () = sample ());
  let burst = sample () in
  Alcotest.(check bool) "bursts garble something" true
    (List.exists fst burst);
  Alcotest.(check bool) "good states stay mostly clean" true
    (List.exists (fun (g, _) -> not g) burst)

(* Scheduled atoms (the model checker's witness format): deterministic
   garbles/misperceptions at pinned slot times, firing exactly there,
   consuming zero PRNG draws, and surviving the JSON codec. *)
let test_scheduled_atoms () =
  let spec =
    Fault_plan.merge
      [
        Fault_plan.garble_at [ 1024; 512; 512 ];
        Fault_plan.misperceive_at [ (1, 2048); (0, 512) ];
      ]
  in
  Alcotest.(check (list int)) "garble times sorted and deduped" [ 512; 1024 ]
    spec.Fault_plan.sp_garbles_at;
  Alcotest.(check string) "label names the scheduled atoms"
    "g@512+g@1024+mp0@512+mp1@2048" (Fault_plan.label spec);
  Alcotest.(check bool) "scheduled misperception is a local fault" true
    (Fault_plan.has_local_faults spec);
  (match Fault_plan.spec_of_json (Fault_plan.spec_to_json spec) with
  | Error e -> Alcotest.fail e
  | Ok spec' ->
    Alcotest.(check string) "codec round trip"
      (Json.to_string (Fault_plan.spec_to_json spec))
      (Json.to_string (Fault_plan.spec_to_json spec')));
  (* The fault seed is irrelevant for a scheduled-only plan — exactly
     the property model-exported artifacts rely on. *)
  let fire seed =
    let p = Fault_plan.create ~seed spec in
    List.map
      (fun now ->
        Fault_plan.tick p;
        ( Fault_plan.wire_garbles p ~now,
          Fault_plan.misperceives p ~source:0 ~now,
          Fault_plan.misperceives p ~source:1 ~now ))
      [ 0; 512; 1024; 2048 ]
  in
  let expected =
    [
      (false, false, false);
      (true, true, false);
      (true, false, false);
      (false, false, true);
    ]
  in
  Alcotest.(check bool) "atoms fire exactly at their slots" true
    (fire 42 = expected);
  Alcotest.(check bool) "fault seed is irrelevant" true (fire 0 = fire 99);
  (* validate rejects atoms that would never fire. *)
  (match Fault_plan.validate ~horizon:1000 (Fault_plan.garble_at [ 1024 ]) with
  | Error e -> Alcotest.(check bool) "past-horizon garble rejected" true
      (contains ~sub:"never fire" e)
  | Ok () -> Alcotest.fail "accepted a garble past the horizon");
  match Fault_plan.validate (Fault_plan.misperceive_at [ (0, -1) ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a negative scheduled time"

let test_alive_windows () =
  let p =
    Fault_plan.create ~seed:1
      (Fault_plan.crash ~source:1 ~from_:100 ~until:200)
  in
  Alcotest.(check bool) "before" true (Fault_plan.alive p ~source:1 ~now:99);
  Alcotest.(check bool) "inside" false (Fault_plan.alive p ~source:1 ~now:100);
  Alcotest.(check bool) "last slot" false
    (Fault_plan.alive p ~source:1 ~now:199);
  Alcotest.(check bool) "after" true (Fault_plan.alive p ~source:1 ~now:200);
  Alcotest.(check bool) "other source" true
    (Fault_plan.alive p ~source:0 ~now:150)

(* ------------------------------------------- DDCR under fault plans *)

let run_under_plan ?(stations = 4) ?(seed = 5) ?(horizon = 40 * ms) spec =
  let inst = Scenarios.videoconference ~stations in
  let params = Ddcr_params.default inst in
  let trace = Instance.trace inst ~seed ~horizon in
  let record, finish = Ddcr_trace.collector () in
  let plan = Fault_plan.create ~horizon ~seed:7 spec in
  let outcome =
    Ddcr.run_trace ~check_lockstep:true ~on_event:record ~plan params inst
      trace ~horizon
  in
  (outcome, finish (), trace)

let errors_of_kind diags rule =
  List.filter
    (fun d ->
      d.Diagnostic.severity = Diagnostic.Error && d.Diagnostic.rule_id = rule)
    diags

let builtin_plans =
  [
    Fault_plan.iid 0.15;
    Fault_plan.gilbert_elliott ~p_enter:0.02 ~p_exit:0.2 ~rate_good:0.01
      ~rate_bad:0.8;
    Fault_plan.misperceive 0.05;
    Fault_plan.crash ~source:1 ~from_:(5 * ms) ~until:(12 * ms);
    Fault_plan.compose
      (Fault_plan.compose (Fault_plan.iid 0.05) (Fault_plan.misperceive 0.02))
      (Fault_plan.crash ~source:2 ~from_:(8 * ms) ~until:(14 * ms));
  ]

let test_safety_under_every_builtin_plan () =
  List.iter
    (fun spec ->
      let outcome, events, trace = run_under_plan spec in
      (* The harness already failed the run if two frames overlapped;
         the trace checker re-proves mutual exclusion independently. *)
      let diags = Trace_check.check_run ~workload:trace ~outcome events in
      let label = Fault_plan.label spec in
      Alcotest.(check int)
        (label ^ ": no safety violations")
        0
        (List.length (errors_of_kind diags "TRC-SAFETY"));
      Alcotest.(check int)
        (label ^ ": ordered")
        0
        (List.length (errors_of_kind diags "TRC-ORDER"));
      Alcotest.(check int)
        (label ^ ": accounting reconciles")
        0
        (List.length (errors_of_kind diags "TRC-ACCOUNT"));
      match outcome.Run.faults with
      | None -> Alcotest.fail (label ^ ": expected fault statistics")
      | Some fs ->
        Alcotest.(check int)
          (label ^ ": one entry per source")
          4
          (List.length fs.Run.f_per_source))
    builtin_plans

let find_time pred events =
  List.find_map (fun e -> pred e) events

let test_crash_recovers_within_one_tree_epoch () =
  let spec = Fault_plan.crash ~source:1 ~from_:(5 * ms) ~until:(12 * ms) in
  let outcome, events, _ = run_under_plan spec in
  let rejoin =
    find_time
      (function
        | Ddcr_trace.Rejoin { time; source = 1 } -> Some time | _ -> None)
      events
  in
  let rejoin = match rejoin with Some t -> t | None -> Alcotest.fail "no rejoin" in
  let resync =
    find_time
      (function
        | Ddcr_trace.Resync { time; source = 1 } when time >= rejoin ->
          Some time
        | _ -> None)
      events
  in
  let resync = match resync with Some t -> t | None -> Alcotest.fail "no resync" in
  (* Within one tree epoch: at most one time tree search may complete
     between the rejoin and the recovery (the one in flight when the
     station came back). *)
  let tts_ends_between =
    List.length
      (List.filter
         (function
           | Ddcr_trace.Tts_end { time; _ } -> time > rejoin && time < resync
           | _ -> false)
         events)
  in
  Alcotest.(check bool) "within one tree epoch" true (tts_ends_between <= 1);
  let summary = Ddcr_trace.summarize events in
  Alcotest.(check int) "one crash" 1 summary.Ddcr_trace.crashes;
  Alcotest.(check int) "one rejoin" 1 summary.Ddcr_trace.rejoins;
  Alcotest.(check int) "one resync" 1 summary.Ddcr_trace.resyncs;
  (match outcome.Run.faults with
  | Some fs ->
    let sf = List.nth fs.Run.f_per_source 1 in
    Alcotest.(check bool) "crashed slots counted" true
      (sf.Run.sf_crashed_slots > 0);
    Alcotest.(check int) "resync counted" 1 sf.Run.sf_resyncs;
    Alcotest.(check bool) "epochs recorded" true (fs.Run.f_epochs <> [])
  | None -> Alcotest.fail "expected fault statistics");
  let m = Run.metrics outcome in
  Alcotest.(check int) "recovery metric" 1 m.Run.recoveries

let test_misperception_desync_and_recovery () =
  let spec = Fault_plan.misperceive 0.05 in
  let outcome, events, _ = run_under_plan ~horizon:(40 * ms) spec in
  let summary = Ddcr_trace.summarize events in
  Alcotest.(check bool) "misperception caused divergence" true
    (summary.Ddcr_trace.desyncs > 0);
  Alcotest.(check int) "every divergence recovered"
    summary.Ddcr_trace.desyncs summary.Ddcr_trace.resyncs;
  let m = Run.metrics outcome in
  Alcotest.(check bool) "misperceived slots counted" true (m.Run.misperceived > 0);
  Alcotest.(check bool) "desync slots counted" true (m.Run.desync_slots > 0);
  (* Desync events pair with a later Resync of the same source. *)
  List.iter
    (function
      | Ddcr_trace.Desync { time; source } ->
        let recovered =
          List.exists
            (function
              | Ddcr_trace.Resync { time = t; source = s } ->
                s = source && t >= time
              | _ -> false)
            events
        in
        Alcotest.(check bool)
          (Printf.sprintf "source %d desynced at %d recovers" source time)
          true recovered
      | _ -> ())
    events

let test_all_stations_crash_cold_restart () =
  let every_source_down =
    List.fold_left
      (fun acc s ->
        Fault_plan.compose acc
          (Fault_plan.crash ~source:s ~from_:(2 * ms) ~until:(4 * ms)))
      Fault_plan.none [ 0; 1; 2 ]
  in
  let inst = Scenarios.trading ~gateways:3 in
  let params = Ddcr_params.default inst in
  let horizon = 10 * ms in
  let trace = Instance.trace inst ~seed:3 ~horizon in
  let record, finish = Ddcr_trace.collector () in
  let plan = Fault_plan.create ~horizon ~seed:11 every_source_down in
  let outcome =
    Ddcr.run_trace ~check_lockstep:true ~on_event:record ~plan params inst
      trace ~horizon
  in
  let summary = Ddcr_trace.summarize (finish ()) in
  Alcotest.(check int) "all crashed" 3 summary.Ddcr_trace.crashes;
  Alcotest.(check int) "all rejoined" 3 summary.Ddcr_trace.rejoins;
  Alcotest.(check int) "all resynced (one cold restart + two copies)" 3
    summary.Ddcr_trace.resyncs;
  Alcotest.(check bool) "traffic resumed after the blackout" true
    (List.exists
       (fun c -> c.Run.c_start > 4 * ms)
       outcome.Run.completions)

let test_run_json_deterministic_under_plan () =
  let spec =
    Fault_plan.compose (Fault_plan.iid 0.1) (Fault_plan.misperceive 0.03)
  in
  let go () =
    let outcome, _, _ = run_under_plan ~horizon:(20 * ms) spec in
    Json.to_string (Run_json.outcome_to_json outcome)
  in
  Alcotest.(check string) "byte-identical replay" (go ()) (go ())

let test_clean_plan_matches_planless_run () =
  (* The empty plan must not perturb the simulation: same completions
     as a run with no plan at all (only the [faults] block differs). *)
  let inst = Scenarios.videoconference ~stations:4 in
  let params = Ddcr_params.default inst in
  let horizon = 20 * ms in
  let trace = Instance.trace inst ~seed:9 ~horizon in
  let bare = Ddcr.run_trace ~check_lockstep:true params inst trace ~horizon in
  let plan = Fault_plan.create ~horizon ~seed:1 Fault_plan.none in
  let clean =
    Ddcr.run_trace ~check_lockstep:true ~plan params inst trace ~horizon
  in
  Alcotest.(check int) "same completions"
    (List.length bare.Run.completions)
    (List.length clean.Run.completions);
  Alcotest.(check bool) "planless run reports no fault stats" true
    (bare.Run.faults = None);
  (match clean.Run.faults with
  | Some fs ->
    Alcotest.(check (list (pair int int))) "no fault epochs" [] fs.Run.f_epochs
  | None -> Alcotest.fail "plan run must report fault stats");
  Alcotest.(check string) "identical wire schedule"
    (Json.to_string (Run_json.outcome_to_json { bare with Run.faults = None }))
    (Json.to_string (Run_json.outcome_to_json { clean with Run.faults = None }))

let suite =
  [
    ( "fault_plan",
      [
        Alcotest.test_case "validation rejects" `Quick test_validate_rejects;
        Alcotest.test_case "degenerate GE rejected" `Quick
          test_validate_rejects_degenerate_ge;
        Alcotest.test_case "overlapping crashes rejected" `Quick
          test_validate_rejects_overlapping_crashes;
        Alcotest.test_case "json codec error paths" `Quick
          test_json_codec_error_paths;
        Alcotest.test_case "atoms/merge roundtrip" `Quick
          test_atoms_merge_roundtrip;
        Alcotest.test_case "scale_severity" `Quick test_scale_severity;
        Alcotest.test_case "split_crash" `Quick test_split_crash;
        Alcotest.test_case "validation accepts builtins" `Quick
          test_validate_accepts_builtins;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "labels" `Quick test_labels;
        Alcotest.test_case "compose overlays" `Quick test_compose_overlays;
        Alcotest.test_case "draws deterministic" `Quick test_draws_deterministic;
        Alcotest.test_case "scheduled atoms" `Quick test_scheduled_atoms;
        Alcotest.test_case "alive windows" `Quick test_alive_windows;
        Alcotest.test_case "safety under every builtin plan" `Slow
          test_safety_under_every_builtin_plan;
        Alcotest.test_case "crash recovers within one tree epoch" `Slow
          test_crash_recovers_within_one_tree_epoch;
        Alcotest.test_case "misperception desync and recovery" `Slow
          test_misperception_desync_and_recovery;
        Alcotest.test_case "all-stations crash cold restart" `Quick
          test_all_stations_crash_cold_restart;
        Alcotest.test_case "run json deterministic" `Quick
          test_run_json_deterministic_under_plan;
        Alcotest.test_case "clean plan matches planless run" `Quick
          test_clean_plan_matches_planless_run;
      ] );
  ]
