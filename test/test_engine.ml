module Engine = Rtnet_sim.Engine

let test_run_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule_at eng ~time:30 (fun _ -> log := 30 :: !log);
  Engine.schedule_at eng ~time:10 (fun _ -> log := 10 :: !log);
  Engine.schedule_at eng ~time:20 (fun _ -> log := 20 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "chronological" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now eng);
  Alcotest.(check int) "three processed" 3 (Engine.events_processed eng)

let test_schedule_relative () =
  let eng = Engine.create () in
  let seen = ref (-1) in
  Engine.schedule_at eng ~time:5 (fun eng ->
      Engine.schedule eng ~delay:7 (fun eng -> seen := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int) "5 + 7" 12 !seen

let test_same_instant_cascade () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule_at eng ~time:4 (fun eng ->
      log := "outer" :: !log;
      Engine.schedule eng ~delay:0 (fun _ -> log := "inner" :: !log));
  Engine.run eng;
  Alcotest.(check (list string)) "cascade at same time" [ "outer"; "inner" ]
    (List.rev !log)

let test_run_until () =
  let eng = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at eng ~time:t (fun _ -> fired := t :: !fired))
    [ 1; 5; 9 ];
  Engine.run ~until:5 eng;
  Alcotest.(check (list int)) "only up to 5" [ 1; 5 ] (List.rev !fired);
  Alcotest.(check int) "clock forced to until" 5 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check (list int)) "resumes" [ 1; 5; 9 ] (List.rev !fired)

let test_past_rejected () =
  let eng = Engine.create () in
  Engine.schedule_at eng ~time:10 (fun eng ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
          Engine.schedule_at eng ~time:3 (fun _ -> ())));
  Engine.run eng

let test_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  Engine.schedule_at eng ~time:1 (fun eng ->
      incr count;
      Engine.stop eng);
  Engine.schedule_at eng ~time:2 (fun _ -> incr count);
  Engine.run eng;
  Alcotest.(check int) "second event discarded" 1 !count

let test_until_boundary () =
  (* An event exactly at [until] fires; one bit-time later does not. *)
  let eng = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at eng ~time:t (fun _ -> fired := t :: !fired))
    [ 5; 6 ];
  Engine.run ~until:5 eng;
  Alcotest.(check (list int)) "inclusive boundary" [ 5 ] (List.rev !fired);
  Alcotest.(check int) "clock at until" 5 (Engine.now eng);
  (* Re-running with the same bound is a no-op. *)
  Engine.run ~until:5 eng;
  Alcotest.(check (list int)) "idempotent" [ 5 ] (List.rev !fired);
  Engine.run eng;
  Alcotest.(check (list int)) "remainder fires" [ 5; 6 ] (List.rev !fired)

let test_until_empty_queue () =
  (* With nothing scheduled the clock is still forced to [until], and
     scheduling before it afterwards is scheduling in the past. *)
  let eng = Engine.create () in
  Engine.run ~until:42 eng;
  Alcotest.(check int) "clock forced" 42 (Engine.now eng);
  Alcotest.(check int) "nothing processed" 0 (Engine.events_processed eng);
  Alcotest.check_raises "past after until"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at eng ~time:41 (fun _ -> ()))

let test_stop_inside_callback () =
  (* [stop] discards even same-instant events queued after the stopping
     callback; the clock stays at the stopping event's time and the
     engine remains usable. *)
  let eng = Engine.create () in
  let count = ref 0 in
  Engine.schedule_at eng ~time:3 (fun eng ->
      incr count;
      Engine.schedule eng ~delay:0 (fun _ -> incr count);
      Engine.stop eng);
  Engine.schedule_at eng ~time:3 (fun _ -> incr count);
  Engine.schedule_at eng ~time:7 (fun _ -> incr count);
  Engine.run eng;
  Alcotest.(check int) "only the stopper ran" 1 !count;
  Alcotest.(check int) "clock at stop time" 3 (Engine.now eng);
  Alcotest.(check int) "processed counts the stopper" 1
    (Engine.events_processed eng);
  Engine.schedule_at eng ~time:10 (fun _ -> incr count);
  Engine.run eng;
  Alcotest.(check int) "engine reusable after stop" 2 !count;
  Alcotest.(check int) "clock resumes" 10 (Engine.now eng)

let test_stop_under_until_still_advances_clock () =
  (* An early [stop] inside [run ~until] empties the queue, but the
     documented clock contract still holds: the clock ends at [until]. *)
  let eng = Engine.create () in
  Engine.schedule_at eng ~time:2 (fun eng -> Engine.stop eng);
  Engine.schedule_at eng ~time:50 (fun _ -> Alcotest.fail "discarded");
  Engine.run ~until:100 eng;
  Alcotest.(check int) "clock forced past stop" 100 (Engine.now eng)

let test_step () =
  let eng = Engine.create () in
  Engine.schedule_at eng ~time:2 (fun _ -> ());
  Alcotest.(check bool) "steps" true (Engine.step eng);
  Alcotest.(check bool) "exhausted" false (Engine.step eng)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "run order" `Quick test_run_order;
        Alcotest.test_case "relative schedule" `Quick test_schedule_relative;
        Alcotest.test_case "same-instant cascade" `Quick test_same_instant_cascade;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "past rejected" `Quick test_past_rejected;
        Alcotest.test_case "stop" `Quick test_stop;
        Alcotest.test_case "until boundary" `Quick test_until_boundary;
        Alcotest.test_case "until empty queue" `Quick test_until_empty_queue;
        Alcotest.test_case "stop inside callback" `Quick
          test_stop_inside_callback;
        Alcotest.test_case "stop under until" `Quick
          test_stop_under_until_still_advances_clock;
        Alcotest.test_case "step" `Quick test_step;
      ] );
  ]
