module Table = Rtnet_util.Table

let test_render_alignment () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "12345" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains header" true
    (Astring_contains.contains out "name");
  Alcotest.(check bool) "left-aligned cell" true
    (Astring_contains.contains out "| a        ");
  Alcotest.(check bool) "right-aligned cell" true
    (Astring_contains.contains out "    1 |")

let test_arity_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_int_rows () =
  let t = Table.create [ "k"; "xi" ] in
  Table.add_int_row t [ 2; 11 ];
  Table.add_int_row t [ 3; 10 ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "k,xi\n2,11\n3,10\n" csv

let test_csv_escaping () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "has,comma"; "has\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "escaped" "a,b\n\"has,comma\",\"has\"\"quote\"\n" csv

let test_save_csv () =
  let dir = Filename.temp_file "rtnet" "" in
  Sys.remove dir;
  let t = Table.create [ "x" ] in
  Table.add_row t [ "1" ];
  let path = Table.save_csv ~dir ~name:"probe" t in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "header written" "x" line

let suite =
  [
    ( "table",
      [
        Alcotest.test_case "render" `Quick test_render_alignment;
        Alcotest.test_case "arity" `Quick test_arity_mismatch;
        Alcotest.test_case "int rows + csv" `Quick test_int_rows;
        Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
        Alcotest.test_case "save csv" `Quick test_save_csv;
      ] );
  ]
