module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run
module Run_json = Rtnet_stats.Run_json
module Channel = Rtnet_channel.Channel

let cls id deadline =
  {
    Message.cls_id = id;
    cls_name = "c" ^ string_of_int id;
    cls_source = 0;
    cls_bits = 1000;
    cls_deadline = deadline;
    cls_burst = 1;
    cls_window = 10_000;
  }

let msg uid arrival deadline = { Message.uid; cls = cls uid deadline; arrival }

let completion uid arrival deadline start finish =
  { Run.c_msg = msg uid arrival deadline; c_start = start; c_finish = finish }

let outcome ?(unfinished = []) ?(dropped = []) ?(horizon = 100_000) completions =
  {
    Run.protocol = "test";
    completions;
    unfinished;
    dropped;
    horizon;
    channel = None;
    faults = None;
  }

let test_latency_lateness () =
  let c = completion 0 100 1000 (* DM 1100 *) 200 900 in
  Alcotest.(check int) "latency" 800 (Run.latency c);
  Alcotest.(check int) "lateness" (-200) (Run.lateness c);
  Alcotest.(check bool) "on time" false (Run.missed c);
  let late = completion 1 0 500 600 1200 in
  Alcotest.(check bool) "late" true (Run.missed late)

let test_metrics_accounting () =
  let o =
    outcome
      ~unfinished:[ msg 10 0 500 (* due before horizon: a miss *) ]
      ~dropped:[ msg 11 0 500 ]
      [ completion 0 0 10_000 0 1000; completion 1 0 500 600 1200 (* late *) ]
  in
  let m = Run.metrics o in
  Alcotest.(check int) "delivered" 2 m.Run.delivered;
  Alcotest.(check int) "misses = late + dropped + due-unfinished" 3
    m.Run.deadline_misses;
  Alcotest.(check int) "worst latency" 1200 m.Run.worst_latency;
  Alcotest.(check (float 1e-9)) "miss ratio" 0.75 m.Run.miss_ratio

let test_unfinished_beyond_horizon_not_missed () =
  let o =
    outcome ~horizon:1000
      ~unfinished:[ msg 5 900 5000 (* DM 5900 > horizon *) ]
      [ completion 0 0 10_000 0 500 ]
  in
  Alcotest.(check int) "no miss" 0 (Run.metrics o).Run.deadline_misses

let test_inversions () =
  (* b (DM 500) was pending when a (DM 9000) started: one inversion. *)
  let a = completion 0 0 9_000 100 300 in
  let b = completion 1 50 500 300 400 in
  Alcotest.(check int) "one inversion" 1 (Run.inversions [ a; b ]);
  (* EDF-consistent order: none. *)
  let c = completion 2 0 400 0 100 in
  Alcotest.(check int) "none when EDF" 0 (Run.inversions [ c; a ]);
  (* b arrived after a started: not an inversion. *)
  let late_b = completion 3 200 500 300 400 in
  Alcotest.(check int) "arrival after start" 0 (Run.inversions [ a; late_b ])

let test_per_class_worst () =
  let o =
    outcome
      [
        completion 0 0 10_000 0 500;
        completion 1 0 10_000 0 900;
        completion 2 0 10_000 0 100;
      ]
  in
  (* all three share cls ids 0,1,2 distinct -> three entries *)
  Alcotest.(check int) "three classes" 3
    (List.length (Run.per_class_worst_latency o))

let test_empty_outcome () =
  let m = Run.metrics (outcome []) in
  Alcotest.(check int) "nothing delivered" 0 m.Run.delivered;
  Alcotest.(check (float 1e-9)) "ratio 0" 0. m.Run.miss_ratio

let channel_stats =
  {
    Channel.idle_slots = 3;
    collision_slots = 2;
    tx_count = 9;
    garbled_count = 4;
    busy_bits = 11_000;
    total_bits = 40_000;
  }

let test_garbled_surfaced () =
  (* The channel's noise counter must flow into the metrics record so
     fault campaigns can gate on it. *)
  let o =
    { (outcome [ completion 0 0 10_000 0 1000 ]) with
      channel = Some channel_stats }
  in
  Alcotest.(check int) "garbled from channel" 4 (Run.metrics o).Run.garbled;
  Alcotest.(check int) "zero without channel" 0
    (Run.metrics (outcome [])).Run.garbled

let test_metrics_json_roundtrip () =
  let o =
    { (outcome
         ~unfinished:[ msg 10 0 500 ]
         ~dropped:[ msg 11 0 500 ]
         [ completion 0 0 10_000 0 1000; completion 1 0 500 600 1200 ])
      with channel = Some channel_stats }
  in
  let m = Run.metrics o in
  (match Run_json.metrics_of_json (Run_json.metrics_to_json m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check bool) "metrics round-trip exactly" true (m = m'));
  match Run_json.channel_stats_of_json (Run_json.channel_stats_to_json channel_stats)
  with
  | Error e -> Alcotest.fail e
  | Ok st -> Alcotest.(check bool) "channel stats round-trip" true
               (st = channel_stats)

let test_outcome_json_shape () =
  let module Json = Rtnet_util.Json in
  let o =
    { (outcome ~unfinished:[ msg 10 0 500 ] [ completion 0 0 10_000 0 1000 ])
      with channel = Some channel_stats }
  in
  let j = Run_json.outcome_to_json o in
  let get k = match Json.member k j with Some v -> v | None ->
    Alcotest.fail ("missing " ^ k)
  in
  Alcotest.(check string) "protocol" "test"
    (Result.get_ok (Json.get_string (get "protocol")));
  Alcotest.(check int) "one completion" 1
    (List.length (Result.get_ok (Json.get_list (get "completions"))));
  Alcotest.(check int) "one unfinished" 1
    (List.length (Result.get_ok (Json.get_list (get "unfinished"))));
  Alcotest.(check bool) "metrics embedded" true (Json.member "metrics" j <> None)

let suite =
  [
    ( "run",
      [
        Alcotest.test_case "latency/lateness" `Quick test_latency_lateness;
        Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
        Alcotest.test_case "horizon exemption" `Quick
          test_unfinished_beyond_horizon_not_missed;
        Alcotest.test_case "inversions" `Quick test_inversions;
        Alcotest.test_case "per-class worst" `Quick test_per_class_worst;
        Alcotest.test_case "empty outcome" `Quick test_empty_outcome;
        Alcotest.test_case "garbled surfaced" `Quick test_garbled_surfaced;
        Alcotest.test_case "metrics json round-trip" `Quick
          test_metrics_json_roundtrip;
        Alcotest.test_case "outcome json shape" `Quick test_outcome_json_shape;
      ] );
  ]
