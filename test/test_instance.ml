module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Instance = Rtnet_workload.Instance
module Phy = Rtnet_channel.Phy

let cls ?(id = 0) ?(source = 0) ?(bits = 8000) ?(deadline = 100_000)
    ?(burst = 1) ?(window = 100_000) () =
  {
    Message.cls_id = id;
    cls_name = "c" ^ string_of_int id;
    cls_source = source;
    cls_bits = bits;
    cls_deadline = deadline;
    cls_burst = burst;
    cls_window = window;
  }

let law = Arrival.Periodic { offset = 0 }

let test_create_ok () =
  match
    Instance.create ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:2
      [ (cls ~id:0 ~source:0 (), law); (cls ~id:1 ~source:1 (), law) ]
  with
  | Ok inst ->
    Alcotest.(check int) "sources" 2 inst.Instance.num_sources;
    Alcotest.(check int) "classes" 2 (List.length (Instance.classes inst))
  | Error e -> Alcotest.fail e

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected create to fail"

let test_create_errors () =
  expect_error
    (Instance.create ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1 []);
  expect_error
    (Instance.create ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:0
       [ (cls (), law) ]);
  expect_error
    (Instance.create ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:2
       [ (cls ~id:0 (), law); (cls ~id:0 (), law) ]);
  expect_error
    (Instance.create ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1
       [ (cls ~source:5 (), law) ]);
  expect_error
    (Instance.create ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1
       [ (cls ~bits:0 (), law) ])

let test_classes_of_source () =
  let inst =
    Instance.create_exn ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:2
      [
        (cls ~id:0 ~source:0 (), law);
        (cls ~id:1 ~source:1 (), law);
        (cls ~id:2 ~source:0 (), law);
      ]
  in
  Alcotest.(check int) "MSG_0" 2 (List.length (Instance.classes_of_source inst 0));
  Alcotest.(check int) "MSG_1" 1 (List.length (Instance.classes_of_source inst 1))

let test_peak_utilization () =
  let inst =
    Instance.create_exn ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1
      [ (cls ~bits:8_000 ~burst:2 ~window:100_000 (), law) ]
  in
  (* l' = 8160, a = 2, w = 100000 -> 0.1632 *)
  Alcotest.(check (float 1e-9)) "peak" 0.1632 (Instance.peak_utilization inst)

let test_scaling () =
  let inst =
    Instance.create_exn ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1
      [ (cls ~deadline:1000 ~window:2000 (), law) ]
  in
  let d2 = Instance.scale_deadlines inst 2.5 in
  let w2 = Instance.scale_windows inst 0.5 in
  let dl i = (List.hd (Instance.classes i)).Message.cls_deadline in
  let wd i = (List.hd (Instance.classes i)).Message.cls_window in
  Alcotest.(check int) "deadline scaled" 2500 (dl d2);
  Alcotest.(check int) "window scaled" 1000 (wd w2);
  Alcotest.(check (float 1e-9)) "halving windows doubles load"
    (2. *. Instance.peak_utilization inst)
    (Instance.peak_utilization w2)

let test_trace_deterministic () =
  let inst =
    Instance.create_exn ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1
      [ (cls (), Arrival.Sporadic { mean_slack = 1.0 }) ]
  in
  let t1 = Instance.trace inst ~seed:9 ~horizon:1_000_000 in
  let t2 = Instance.trace inst ~seed:9 ~horizon:1_000_000 in
  Alcotest.(check (list int)) "same seed, same trace"
    (List.map (fun m -> m.Message.arrival) t1)
    (List.map (fun m -> m.Message.arrival) t2)

let test_with_law () =
  let inst =
    Instance.create_exn ~name:"t" ~phy:Phy.gigabit_ethernet ~num_sources:1
      [ (cls (), law) ]
  in
  let adv = Instance.with_law inst Arrival.Greedy_burst in
  Alcotest.(check bool) "law replaced" true
    (snd adv.Instance.classes.(0) = Arrival.Greedy_burst)

let suite =
  [
    ( "instance",
      [
        Alcotest.test_case "create ok" `Quick test_create_ok;
        Alcotest.test_case "create errors" `Quick test_create_errors;
        Alcotest.test_case "classes of source" `Quick test_classes_of_source;
        Alcotest.test_case "peak utilization" `Quick test_peak_utilization;
        Alcotest.test_case "scaling" `Quick test_scaling;
        Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
        Alcotest.test_case "with_law" `Quick test_with_law;
      ] );
  ]
