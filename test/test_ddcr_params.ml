module Ddcr_params = Rtnet_core.Ddcr_params
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message

let base =
  {
    Ddcr_params.time_m = 2;
    time_leaves = 8;
    class_width = 1000;
    alpha = 0;
    theta = 0;
    static_m = 2;
    static_leaves = 4;
    static_indices = [| [| 0 |]; [| 1; 2 |] |];
    burst_bits = 0;
  }

let expect_error p ~z msg =
  match Ddcr_params.validate p ~num_sources:z with
  | Error _ -> ()
  | Ok () -> Alcotest.fail ("expected rejection: " ^ msg)

let test_validate_ok () =
  Alcotest.(check bool) "valid" true
    (Ddcr_params.validate base ~num_sources:2 = Ok ())

let test_validate_rejects () =
  expect_error { base with Ddcr_params.time_leaves = 6 } ~z:2 "F not power";
  expect_error { base with Ddcr_params.static_leaves = 5 } ~z:2 "q not power";
  expect_error { base with Ddcr_params.class_width = 0 } ~z:2 "c = 0";
  expect_error { base with Ddcr_params.alpha = -1 } ~z:2 "alpha < 0";
  expect_error { base with Ddcr_params.theta = -1 } ~z:2 "theta < 0";
  expect_error base ~z:3 "wrong arity";
  expect_error
    { base with Ddcr_params.static_indices = [| [| 0 |]; [||] |] }
    ~z:2 "empty set";
  expect_error
    { base with Ddcr_params.static_indices = [| [| 0 |]; [| 0 |] |] }
    ~z:2 "shared index";
  expect_error
    { base with Ddcr_params.static_indices = [| [| 0 |]; [| 2; 1 |] |] }
    ~z:2 "not ascending";
  expect_error
    { base with Ddcr_params.static_indices = [| [| 0 |]; [| 4 |] |] }
    ~z:2 "out of range"

let test_nu () =
  Alcotest.(check int) "nu 0" 1 (Ddcr_params.nu base 0);
  Alcotest.(check int) "nu 1" 2 (Ddcr_params.nu base 1)

let test_default_is_valid () =
  List.iter
    (fun (name, inst) ->
      let p = Ddcr_params.default inst in
      match Ddcr_params.validate p ~num_sources:inst.Instance.num_sources with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    Scenarios.all

let test_default_horizon_covers_deadlines () =
  List.iter
    (fun (name, inst) ->
      let p = Ddcr_params.default inst in
      let max_d =
        List.fold_left
          (fun acc c -> max acc c.Message.cls_deadline)
          0 (Instance.classes inst)
      in
      Alcotest.(check bool)
        (name ^ ": cF covers max deadline")
        true
        (Ddcr_params.horizon_classes p >= max_d))
    Scenarios.all

let test_default_indices_per_source () =
  let inst = Scenarios.videoconference ~stations:3 in
  let p = Ddcr_params.default ~indices_per_source:4 inst in
  (* The request is a minimum; the tree (q = 16 for 3*4 = 12 needed
     leaves) is then filled: each source gets ⌊16/3⌋ = 5 indices. *)
  Alcotest.(check int) "nu = q/z" 5 (Ddcr_params.nu p 0);
  Alcotest.(check bool) "valid" true
    (Ddcr_params.validate p ~num_sources:3 = Ok ());
  (* Filling never leaves more than z-1 unused leaves. *)
  let used = 3 * Ddcr_params.nu p 0 in
  Alcotest.(check bool) "tree filled" true
    (p.Ddcr_params.static_leaves - used < 3)

let test_allocations_valid_and_shaped () =
  let inst = Rtnet_workload.Scenarios.skewed ~sources:6 ~heavy_fraction:0.7 in
  List.iter
    (fun alloc ->
      let p = Ddcr_params.default ~allocation:alloc inst in
      Alcotest.(check bool) "valid" true
        (Ddcr_params.validate p ~num_sources:6 = Ok ()))
    [ Ddcr_params.Round_robin; Ddcr_params.Contiguous; Ddcr_params.Weighted ];
  (* Contiguous: every source's indices form one consecutive block. *)
  let pc = Ddcr_params.default ~allocation:Ddcr_params.Contiguous inst in
  Array.iter
    (fun idx ->
      Array.iteri
        (fun j v -> if j > 0 then Alcotest.(check int) "block" (idx.(0) + j) v)
        idx)
    pc.Ddcr_params.static_indices;
  (* Weighted: the heavy source (source 0) owns strictly more leaves
     than any light one. *)
  let pw = Ddcr_params.default ~allocation:Ddcr_params.Weighted inst in
  let nu0 = Ddcr_params.nu pw 0 in
  for i = 1 to 5 do
    Alcotest.(check bool) "heavy gets more" true (nu0 > Ddcr_params.nu pw i)
  done;
  (* All strategies still fill the whole tree apart from rounding. *)
  let total p =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 p.Ddcr_params.static_indices
  in
  Alcotest.(check int) "weighted fills tree" pw.Ddcr_params.static_leaves (total pw)

let test_branching_parameter () =
  let inst = Scenarios.videoconference ~stations:4 in
  List.iter
    (fun m ->
      let p = Ddcr_params.default ~branching:m inst in
      Alcotest.(check int) "time branching" m p.Ddcr_params.time_m;
      Alcotest.(check int) "static branching" m p.Ddcr_params.static_m;
      Alcotest.(check bool) "valid" true
        (Ddcr_params.validate p ~num_sources:4 = Ok ());
      (* The requested 64 leaves round up to a power of m. *)
      Alcotest.(check bool) "F >= 64" true (p.Ddcr_params.time_leaves >= 64))
    [ 2; 3; 4; 5; 8 ];
  Alcotest.check_raises "branching < 2"
    (Invalid_argument "Ddcr_params.default: branching < 2") (fun () ->
      ignore (Ddcr_params.default ~branching:1 inst))

let test_with_theta () =
  let p = Ddcr_params.with_theta base 500 in
  Alcotest.(check int) "theta set" 500 p.Ddcr_params.theta;
  Alcotest.check_raises "negative" (Invalid_argument "Ddcr_params.with_theta: negative")
    (fun () -> ignore (Ddcr_params.with_theta base (-1)))

let suite =
  [
    ( "ddcr_params",
      [
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
        Alcotest.test_case "nu" `Quick test_nu;
        Alcotest.test_case "default valid" `Quick test_default_is_valid;
        Alcotest.test_case "default horizon" `Quick
          test_default_horizon_covers_deadlines;
        Alcotest.test_case "indices per source" `Quick
          test_default_indices_per_source;
        Alcotest.test_case "allocations" `Quick test_allocations_valid_and_shaped;
        Alcotest.test_case "branching" `Quick test_branching_parameter;
        Alcotest.test_case "with_theta" `Quick test_with_theta;
      ] );
  ]
