module Summary = Rtnet_stats.Summary

let test_empty () =
  Alcotest.(check bool) "none on empty" true (Summary.of_list [] = None);
  Alcotest.check_raises "exn variant"
    (Invalid_argument "Summary.of_list_exn: empty") (fun () ->
      ignore (Summary.of_list_exn []))

let test_basic () =
  let s = Summary.of_list_exn [ 5; 1; 3; 2; 4 ] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  Alcotest.(check int) "min" 1 s.Summary.min;
  Alcotest.(check int) "max" 5 s.Summary.max;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Summary.mean;
  Alcotest.(check int) "median" 3 s.Summary.p50

let test_percentiles () =
  let sorted = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50 of 1..100" 50 (Summary.percentile sorted 50.);
  Alcotest.(check int) "p99" 99 (Summary.percentile sorted 99.);
  Alcotest.(check int) "p100" 100 (Summary.percentile sorted 100.);
  Alcotest.(check int) "p1" 1 (Summary.percentile sorted 1.)

(* Nearest-rank boundary cases: p=0 clamps to the smallest sample,
   p=100 is the largest, a singleton answers every percentile, and
   ties are returned verbatim. *)
let test_percentile_edges () =
  let sorted = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p0 clamps to min" 1 (Summary.percentile sorted 0.);
  Alcotest.(check int) "p100 is max" 100 (Summary.percentile sorted 100.);
  let single = [| 42 |] in
  Alcotest.(check int) "single p0" 42 (Summary.percentile single 0.);
  Alcotest.(check int) "single p50" 42 (Summary.percentile single 50.);
  Alcotest.(check int) "single p100" 42 (Summary.percentile single 100.);
  let ties = [| 7; 7; 7; 7; 9 |] in
  Alcotest.(check int) "ties p50" 7 (Summary.percentile ties 50.);
  Alcotest.(check int) "ties p79 still tied" 7 (Summary.percentile ties 79.);
  Alcotest.(check int) "ties p100" 9 (Summary.percentile ties 100.);
  let two = [| 1; 2 |] in
  Alcotest.(check int) "two p50" 1 (Summary.percentile two 50.);
  Alcotest.(check int) "two p51" 2 (Summary.percentile two 51.)

let test_stddev () =
  let s = Summary.of_list_exn [ 2; 2; 2; 2 ] in
  Alcotest.(check (float 1e-9)) "constant has zero sd" 0. s.Summary.stddev;
  let s2 = Summary.of_list_exn [ 0; 10 ] in
  Alcotest.(check (float 1e-9)) "sd of {0,10}" 5. s2.Summary.stddev

let test_histogram () =
  let h = Summary.Histogram.create ~lo:0 ~hi:100 ~buckets:10 in
  List.iter (Summary.Histogram.add h) [ 5; 15; 15; 95; 200; -3 ];
  let counts = Summary.Histogram.counts h in
  Alcotest.(check int) "bucket 0 (incl. clamped -3)" 2 counts.(0);
  Alcotest.(check int) "bucket 1" 2 counts.(1);
  Alcotest.(check int) "last bucket (incl. clamped 200)" 2 counts.(9);
  let rendering = Summary.Histogram.render h in
  Alcotest.(check bool) "renders bars" true
    (Astring_contains.contains rendering "#")

let test_log2_histogram () =
  let h = Summary.Histogram.create_log2 () in
  List.iter (Summary.Histogram.add h) [ -5; 0; 1; 2; 3; 4; 7; 8; 1024; 1025 ];
  let counts = Summary.Histogram.counts h in
  Alcotest.(check int) "buckets" Summary.Histogram.log2_buckets
    (Array.length counts);
  Alcotest.(check int) "bucket 0: v <= 1 (incl. clamped -5)" 3 counts.(0);
  Alcotest.(check int) "bucket 1: [2,4)" 2 counts.(1);
  Alcotest.(check int) "bucket 2: [4,8)" 2 counts.(2);
  Alcotest.(check int) "bucket 3: [8,16)" 1 counts.(3);
  Alcotest.(check int) "bucket 10: [1024,2048)" 2 counts.(10);
  let bounds = Summary.Histogram.bounds h in
  Alcotest.(check (pair int int)) "bucket 1 bounds" (2, 3) bounds.(1);
  Alcotest.(check (pair int int)) "bucket 10 bounds" (1024, 2047) bounds.(10);
  Alcotest.(check int) "last bucket hi is max_int" max_int
    (snd bounds.(Summary.Histogram.log2_buckets - 1));
  let rendering = Summary.Histogram.render h in
  Alcotest.(check bool) "render stops after last populated bucket" false
    (Astring_contains.contains rendering "4096")

let prop_log2_bucket_bounds =
  QCheck.Test.make ~name:"log2 bucket brackets its sample" ~count:500
    QCheck.(int_range 0 max_int)
    (fun v ->
      let h = Summary.Histogram.create_log2 () in
      Summary.Histogram.add h v;
      let counts = Summary.Histogram.counts h in
      let bounds = Summary.Histogram.bounds h in
      let b = ref (-1) in
      Array.iteri (fun i c -> if c > 0 then b := i) counts;
      let lo, hi = bounds.(!b) in
      (if !b = 0 then v <= 1 else lo <= v) && v <= hi)

let prop_summary_bounds =
  QCheck.Test.make ~name:"min <= p50 <= p90 <= p99 <= max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range (-1000) 1000))
    (fun samples ->
      let s = Summary.of_list_exn samples in
      s.Summary.min <= s.Summary.p50
      && s.Summary.p50 <= s.Summary.p90
      && s.Summary.p90 <= s.Summary.p99
      && s.Summary.p99 <= s.Summary.max
      && s.Summary.mean >= float_of_int s.Summary.min
      && s.Summary.mean <= float_of_int s.Summary.max)

let suite =
  [
    ( "summary",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "log2 histogram" `Quick test_log2_histogram;
        QCheck_alcotest.to_alcotest prop_log2_bucket_bounds;
        QCheck_alcotest.to_alcotest prop_summary_bounds;
      ] );
  ]
