module Summary = Rtnet_stats.Summary

let test_empty () =
  Alcotest.(check bool) "none on empty" true (Summary.of_list [] = None);
  Alcotest.check_raises "exn variant"
    (Invalid_argument "Summary.of_list_exn: empty") (fun () ->
      ignore (Summary.of_list_exn []))

let test_basic () =
  let s = Summary.of_list_exn [ 5; 1; 3; 2; 4 ] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  Alcotest.(check int) "min" 1 s.Summary.min;
  Alcotest.(check int) "max" 5 s.Summary.max;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Summary.mean;
  Alcotest.(check int) "median" 3 s.Summary.p50

let test_percentiles () =
  let sorted = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50 of 1..100" 50 (Summary.percentile sorted 50.);
  Alcotest.(check int) "p99" 99 (Summary.percentile sorted 99.);
  Alcotest.(check int) "p100" 100 (Summary.percentile sorted 100.);
  Alcotest.(check int) "p1" 1 (Summary.percentile sorted 1.)

let test_stddev () =
  let s = Summary.of_list_exn [ 2; 2; 2; 2 ] in
  Alcotest.(check (float 1e-9)) "constant has zero sd" 0. s.Summary.stddev;
  let s2 = Summary.of_list_exn [ 0; 10 ] in
  Alcotest.(check (float 1e-9)) "sd of {0,10}" 5. s2.Summary.stddev

let test_histogram () =
  let h = Summary.Histogram.create ~lo:0 ~hi:100 ~buckets:10 in
  List.iter (Summary.Histogram.add h) [ 5; 15; 15; 95; 200; -3 ];
  let counts = Summary.Histogram.counts h in
  Alcotest.(check int) "bucket 0 (incl. clamped -3)" 2 counts.(0);
  Alcotest.(check int) "bucket 1" 2 counts.(1);
  Alcotest.(check int) "last bucket (incl. clamped 200)" 2 counts.(9);
  let rendering = Summary.Histogram.render h in
  Alcotest.(check bool) "renders bars" true
    (Astring_contains.contains rendering "#")

let prop_summary_bounds =
  QCheck.Test.make ~name:"min <= p50 <= p90 <= p99 <= max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range (-1000) 1000))
    (fun samples ->
      let s = Summary.of_list_exn samples in
      s.Summary.min <= s.Summary.p50
      && s.Summary.p50 <= s.Summary.p90
      && s.Summary.p90 <= s.Summary.p99
      && s.Summary.p99 <= s.Summary.max
      && s.Summary.mean >= float_of_int s.Summary.min
      && s.Summary.mean <= float_of_int s.Summary.max)

let suite =
  [
    ( "summary",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "histogram" `Quick test_histogram;
        QCheck_alcotest.to_alcotest prop_summary_bounds;
      ] );
  ]
