(* rtnet.model: the explicit-state model checker.

   The load-bearing properties: the pure Ddcr.Step transition agrees
   step-for-step with the mutable Automaton wrapper on randomized
   fault-free and faulty feedback sequences (the differential
   property); exploration is deterministic and proves a small clean
   instance clean; the committed broken-parameters fixture yields a
   deadline-miss counterexample whose exported artifact replays
   through the real simulator to the same Oracle verdict and
   fingerprint; and trails fold into scheduled fault-plan atoms
   exactly. *)

module Ddcr = Rtnet_core.Ddcr
module Step = Rtnet_core.Ddcr.Step
module Ddcr_params = Rtnet_core.Ddcr_params
module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Channel = Rtnet_channel.Channel
module Fault_plan = Rtnet_channel.Fault_plan
module Prng = Rtnet_util.Prng
module Json = Rtnet_util.Json
module Spec = Rtnet_campaign.Spec
module Oracle = Rtnet_analysis.Oracle
module Candidate = Rtnet_chaos.Candidate
module Repro = Rtnet_chaos.Repro
module Transition = Rtnet_model.Transition
module Explore = Rtnet_model.Explore
module Witness = Rtnet_model.Witness

(* -------------------- differential: Step vs Automaton -------------------- *)

let diff_params =
  {
    Ddcr_params.time_m = 2;
    time_leaves = 8;
    class_width = 1000;
    alpha = 0;
    theta = 0;
    static_m = 2;
    static_leaves = 4;
    static_indices = [| [| 0; 2 |]; [| 1; 3 |] |];
    burst_bits = 0;
  }

let mk_msg ~src ~uid ~arrival ~deadline =
  {
    Message.uid;
    cls =
      {
        Message.cls_id = src;
        cls_name = "m";
        cls_source = src;
        cls_bits = 1000;
        cls_deadline = deadline;
        cls_burst = 1;
        cls_window = 100_000;
      };
    arrival;
  }

(* A micro-harness driving TWO implementations of both replicas of a
   2-source system through the same feedback: the mutable Automaton
   and a fold over the pure Step function.  The channel logic is the
   simplest faithful abstraction (lone attempt carried, two attempts
   clash — destructively or with a key-arbitrated survivor — and an
   optional garble corrupting a carried frame), which is enough to
   reach every observe arm.  Any disagreement in decisions, states or
   fingerprints fails the property. *)
let run_differential ~seed ~faulty ~arbitrated ~slots =
  let rng = Prng.create seed in
  let auts =
    [| Ddcr.Automaton.create diff_params ~source:0;
       Ddcr.Automaton.create diff_params ~source:1 |]
  in
  let pure = [| Step.init; Step.init |] in
  let queues =
    Array.init 2 (fun src ->
        ref
          (List.init 6 (fun i ->
               mk_msg ~src ~uid:((src * 16) + i) ~arrival:(i * 1500)
                 ~deadline:(2000 + Prng.int rng 6000))))
  in
  let now = ref 0 in
  let slot = 512 in
  for _ = 1 to slots do
    let msg_star src =
      match !(queues.(src)) with
      | m :: _ when m.Message.arrival <= !now -> Some m
      | _ -> None
    in
    let pop src =
      match !(queues.(src)) with
      | _ :: rest -> queues.(src) := rest
      | [] -> ()
    in
    let attempts =
      List.filter_map
        (fun src ->
          let from_aut =
            Ddcr.Automaton.decide auts.(src) ~msg_star:(msg_star src)
          in
          let from_step =
            Step.decide diff_params ~source:src pure.(src)
              ~msg_star:(msg_star src)
          in
          Alcotest.(check bool)
            (Printf.sprintf "decide agrees (source %d, t=%d)" src !now)
            true
            (from_aut = from_step);
          Option.map (fun a -> (src, a)) from_aut)
        [ 0; 1 ]
    in
    let garble = faulty && Prng.int rng 4 = 0 in
    let resolution =
      match attempts with
      | [] -> Channel.Idle
      | [ (_, a) ] ->
        if garble then Channel.Garbled { on_wire = a.Channel.att_bits }
        else
          Channel.Tx
            {
              src = a.Channel.att_source;
              tag = a.Channel.att_tag;
              on_wire = a.Channel.att_bits;
            }
      | many ->
        let contenders =
          List.map
            (fun (_, a) -> (a.Channel.att_source, a.Channel.att_tag))
            many
        in
        let survivor =
          if not arbitrated then None
          else
            let _, a =
              List.fold_left
                (fun ((_, best) as acc) ((_, c) as cand) ->
                  if
                    (c.Channel.att_key, c.Channel.att_source)
                    < (best.Channel.att_key, best.Channel.att_source)
                  then cand
                  else acc)
                (List.hd many) (List.tl many)
            in
            Some (a.Channel.att_source, a.Channel.att_tag, a.Channel.att_bits)
        in
        Channel.Clash { contenders; survivor }
    in
    let next_free =
      match resolution with
      | Channel.Idle -> !now + slot
      | Channel.Tx { on_wire; _ } | Channel.Garbled { on_wire } ->
        !now + on_wire
      | Channel.Clash { survivor = None; _ } -> !now + slot
      | Channel.Clash { survivor = Some (_, _, on_wire); _ } ->
        !now + slot + on_wire
    in
    (match resolution with
    | Channel.Tx { src; _ } | Channel.Clash { survivor = Some (src, _, _); _ }
      ->
      pop src
    | _ -> ());
    for src = 0 to 1 do
      let from_aut =
        match
          Ddcr.Automaton.observe auts.(src) ~resolution ~next_free
        with
        | () -> None
        | exception Ddcr.Protocol_violation m -> Some m
      in
      let from_step =
        match
          Step.observe diff_params ~source:src pure.(src) ~resolution
            ~next_free
        with
        | st ->
          pure.(src) <- st;
          None
        | exception Ddcr.Protocol_violation m -> Some m
      in
      Alcotest.(check (option string))
        (Printf.sprintf "observe agrees on violations (source %d, t=%d)" src
           !now)
        from_aut from_step;
      if from_aut = None then begin
        Alcotest.(check bool)
          (Printf.sprintf "states agree (source %d, t=%d)" src !now)
          true
          (Ddcr.Automaton.state auts.(src) = pure.(src));
        Alcotest.(check string)
          (Printf.sprintf "fingerprints agree (source %d, t=%d)" src !now)
          (Ddcr.Automaton.fingerprint auts.(src))
          (Step.fingerprint pure.(src))
      end
    done;
    now := next_free
  done

let prop_differential =
  QCheck.Test.make ~name:"pure Step agrees with mutable Automaton" ~count:60
    QCheck.(triple (int_range 0 10_000) bool bool)
    (fun (seed, faulty, arbitrated) ->
      run_differential ~seed ~faulty ~arbitrated ~slots:40;
      true)

(* -------------------- exploration -------------------- *)

let uniform2 =
  { Spec.sc_kind = "uniform"; sc_size = 2; sc_load = 0.3;
    sc_deadline_windows = 2.0; sc_fanout = 1 }

let horizon = 1_000_000

let sys_of ?params scenario =
  let inst = Spec.instance scenario in
  let trace = Instance.trace inst ~seed:1 ~horizon in
  let params =
    match params with Some p -> p | None -> Ddcr_params.default inst
  in
  Transition.make ~params ~inst ~trace ~horizon

let explore ?(depth = 12) ?(budget = 1) ?(max_violations = 1) sys =
  Explore.run
    ~config:
      {
        Explore.c_depth = depth;
        c_budget = budget;
        c_max_states = 200_000;
        c_max_violations = max_violations;
      }
    sys ~budget

let test_clean_instance_proves_clean () =
  let out = explore (sys_of uniform2) in
  Alcotest.(check bool) "no violation" true (out.Explore.o_findings = []);
  Alcotest.(check bool) "not truncated" false out.Explore.o_truncated;
  Alcotest.(check bool) "explored beyond the fault-free path" true
    (out.Explore.o_explored > 12)

let test_exploration_deterministic () =
  let a = explore (sys_of uniform2) and b = explore (sys_of uniform2) in
  Alcotest.(check int) "explored count is reproducible"
    a.Explore.o_explored b.Explore.o_explored;
  Alcotest.(check int) "transition count is reproducible"
    a.Explore.o_transitions b.Explore.o_transitions

let test_budget_zero_is_linear () =
  (* Without faults there is exactly one schedule, so BFS degenerates
     to the single fault-free path: states = transitions + 1 root,
     one successor each. *)
  let out = explore ~budget:0 (sys_of uniform2) in
  Alcotest.(check int) "one successor per state"
    out.Explore.o_explored
    (out.Explore.o_transitions + 1)

let test_model_rejects_bursting () =
  let inst = Spec.instance uniform2 in
  let p = Ddcr_params.with_burst (Ddcr_params.default inst) 65536 in
  Alcotest.check_raises "bursting is outside the model"
    (Invalid_argument
       "Transition.make: packet bursting is outside the model (burst_bits \
        must be 0)")
    (fun () ->
      ignore (Transition.make ~params:p ~inst ~trace:[] ~horizon))

(* -------------------- the committed broken-ξ fixture -------------------- *)

let fixture name = Filename.concat "fixtures" name

let broken_params () =
  match Json.parse_file (fixture "model_params_broken.json") with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Ddcr_params.of_json j with
    | Error e -> Alcotest.fail e
    | Ok p -> p)

let find_broken () =
  (* The fixture's tiny class width breaks the ξ class mapping: time
     indices land far beyond the F = 64 leaves, so fresh messages are
     shut out of time trees until reft creeps within c·F of their
     deadline — by which time the frame can only finish late.  The
     violation is reachable without any fault action. *)
  let out =
    explore ~depth:80 ~budget:0 (sys_of ~params:(broken_params ()) uniform2)
  in
  match out.Explore.o_findings with
  | [ f ] -> f
  | l -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length l))

let test_broken_params_found_fault_free () =
  let f = find_broken () in
  match f.Explore.f_violation with
  | Transition.Deadline_miss { uid; source; finish; deadline; _ } ->
    Alcotest.(check int) "first shut-out frame" 0 uid;
    Alcotest.(check int) "of source 0" 0 source;
    Alcotest.(check bool) "finished late" true (finish > deadline);
    Alcotest.(check bool) "trail is fault-free" true
      (List.for_all (fun (_, a) -> a = Transition.No_fault) f.Explore.f_trail)
  | v -> Alcotest.fail (Transition.describe_violation v)

let test_witness_round_trip () =
  let f = find_broken () in
  let src =
    {
      Witness.w_scenario = uniform2;
      w_horizon_ms = 1;
      w_params = Some (broken_params ());
      w_trace_seed = 1;
    }
  in
  let repro, report = Witness.export src f in
  (* The real simulator reproduces the model's verdict... *)
  (match report.Candidate.rp_verdict with
  | Oracle.Deadline_miss { first_uid; _ } ->
    Alcotest.(check int) "simulator misses the same first frame" 0 first_uid
  | v -> Alcotest.fail ("unexpected verdict: " ^ Oracle.describe v));
  Alcotest.(check bool) "note names the model invariant" true
    (Astring_contains.contains repro.Repro.re_note "model counterexample");
  (* ...and the frozen artifact replays to identical verdict and
     fingerprint, surviving a JSON round trip. *)
  let r = Repro.replay repro in
  Alcotest.(check bool) "replayed verdict matches" true r.Repro.rr_verdict_ok;
  Alcotest.(check bool) "replayed fingerprint matches" true
    r.Repro.rr_fingerprint_ok;
  match Repro.of_json (Repro.to_json repro) with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    Alcotest.(check string) "codec round trip is the identity"
      (Json.to_string (Repro.to_json repro))
      (Json.to_string (Repro.to_json decoded))

let test_committed_artifact_replays () =
  (* The committed artifact (regenerated by the model-smoke dune rule,
     byte-diffed on drift) re-executes to its frozen expectations. *)
  match Repro.load ~path:(fixture "model_repro_min.json") with
  | Error e -> Alcotest.fail e
  | Ok repro ->
    Alcotest.(check bool) "carries a params override" true
      (repro.Repro.re_params <> None);
    let r = Repro.replay repro in
    Alcotest.(check bool) "verdict matches" true r.Repro.rr_verdict_ok;
    Alcotest.(check bool) "fingerprint matches" true r.Repro.rr_fingerprint_ok

(* -------------------- trail folding -------------------- *)

let test_plan_of_trail () =
  let spec =
    Witness.plan_of_trail
      [
        (0, Transition.No_fault);
        (512, Transition.Garble);
        (1024, Transition.Misperceive 1);
        (1536, Transition.Crash 0);
        (2048, Transition.Revive 0);
        (2560, Transition.Crash 1);
        (3072, Transition.No_fault);
      ]
  in
  Alcotest.(check (list int)) "scheduled garbles" [ 512 ]
    spec.Fault_plan.sp_garbles_at;
  Alcotest.(check (list (pair int int))) "scheduled misperceptions"
    [ (1, 1024) ] spec.Fault_plan.sp_misperceive_at;
  let windows =
    List.map
      (fun c ->
        (c.Fault_plan.cw_source, c.Fault_plan.cw_from, c.Fault_plan.cw_until))
      spec.Fault_plan.sp_crashes
  in
  Alcotest.(check bool) "closed crash window" true
    (List.mem (0, 1536, 2048) windows);
  (* The unclosed crash is closed just past the last explored slot. *)
  Alcotest.(check bool) "open crash window closed at trail end" true
    (List.mem (1, 2560, 3073) windows);
  Alcotest.(check int) "nothing else" 2 (List.length windows)

let suite =
  [
    ( "model",
      [
        QCheck_alcotest.to_alcotest prop_differential;
        Alcotest.test_case "clean instance proves clean" `Quick
          test_clean_instance_proves_clean;
        Alcotest.test_case "exploration is deterministic" `Quick
          test_exploration_deterministic;
        Alcotest.test_case "budget 0 degenerates to one path" `Quick
          test_budget_zero_is_linear;
        Alcotest.test_case "bursting rejected" `Quick
          test_model_rejects_bursting;
        Alcotest.test_case "broken ξ fixture violates fault-free" `Quick
          test_broken_params_found_fault_free;
        Alcotest.test_case "witness exports and replays" `Quick
          test_witness_round_trip;
        Alcotest.test_case "committed artifact replays" `Quick
          test_committed_artifact_replays;
        Alcotest.test_case "trail folds into scheduled atoms" `Quick
          test_plan_of_trail;
      ] );
  ]
