module Cos = Rtnet_edf.Cos
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message

let inst = Scenarios.videoconference ~stations:4 (* deadlines 5/10/50 ms *)

let scheme = Cos.design ~levels:8 inst

let deadlines i = List.map (fun c -> c.Message.cls_deadline) (Instance.classes i)

let test_levels () = Alcotest.(check int) "8 levels" 8 (Cos.levels scheme)

let test_priority_monotone () =
  let lo = List.fold_left min max_int (deadlines inst) in
  let hi = List.fold_left max 1 (deadlines inst) in
  let rec go d prev =
    if d > hi then ()
    else begin
      let p = Cos.priority scheme d in
      Alcotest.(check bool) "monotone" true (p >= prev);
      Alcotest.(check bool) "within range" true (p >= 0 && p < 8);
      go (d + ((hi - lo) / 50)) p
    end
  in
  go lo 0

let test_representative_conservative_and_idempotent () =
  List.iter
    (fun d ->
      let r = Cos.representative scheme d in
      Alcotest.(check bool) (Printf.sprintf "rep %d <= %d" r d) true (r <= d);
      Alcotest.(check int) "same bucket" (Cos.priority scheme d)
        (Cos.priority scheme r);
      Alcotest.(check int) "idempotent" r (Cos.representative scheme r))
    (deadlines inst @ [ 5_000_000; 7_777_777; 50_000_000; 49_999_999 ])

let test_quantized_instance_valid () =
  let q = Cos.quantize_instance scheme inst in
  Alcotest.(check int) "same classes"
    (List.length (Instance.classes inst))
    (List.length (Instance.classes q));
  List.iter2
    (fun original quantized ->
      Alcotest.(check bool) "deadline only shrinks" true
        (quantized.Message.cls_deadline <= original.Message.cls_deadline);
      Alcotest.(check int) "nothing else changed" original.Message.cls_bits
        quantized.Message.cls_bits)
    (Instance.classes inst) (Instance.classes q);
  (* Quantizing an already-quantized instance is the identity. *)
  let q2 = Cos.quantize_instance scheme q in
  Alcotest.(check (list int)) "fixpoint" (deadlines q) (deadlines q2)

let test_spread_instances_use_levels () =
  (* Deadlines spanning 5..50 ms across 8 log buckets occupy at least
     three distinct levels. *)
  let used =
    List.sort_uniq compare
      (List.map (Cos.priority scheme) (deadlines inst))
  in
  Alcotest.(check bool) "several levels used" true (List.length used >= 3)

let test_single_deadline_instance () =
  let one =
    Scenarios.uniform ~sources:2 ~classes_per_source:1 ~load:0.1
      ~deadline_windows:2.0
  in
  let s = Cos.design ~levels:8 one in
  let d = List.hd (deadlines one) in
  Alcotest.(check int) "priority 0" 0 (Cos.priority s d);
  Alcotest.(check int) "identity representative" d (Cos.representative s d)

let test_design_rejects () =
  Alcotest.check_raises "levels" (Invalid_argument "Cos.design: levels < 1")
    (fun () -> ignore (Cos.design ~levels:0 inst))

let prop_priority_sorted =
  QCheck.Test.make ~name:"smaller deadline never lower priority" ~count:300
    QCheck.(pair (int_range 1 100_000_000) (int_range 1 100_000_000))
    (fun (d1, d2) ->
      let lo = min d1 d2 and hi = max d1 d2 in
      Cos.priority scheme lo <= Cos.priority scheme hi)

let suite =
  [
    ( "cos",
      [
        Alcotest.test_case "levels" `Quick test_levels;
        Alcotest.test_case "priority monotone" `Quick test_priority_monotone;
        Alcotest.test_case "representative" `Quick
          test_representative_conservative_and_idempotent;
        Alcotest.test_case "quantized instance" `Quick test_quantized_instance_valid;
        Alcotest.test_case "levels used" `Quick test_spread_instances_use_levels;
        Alcotest.test_case "degenerate instance" `Quick test_single_deadline_instance;
        Alcotest.test_case "design rejects" `Quick test_design_rejects;
        QCheck_alcotest.to_alcotest prop_priority_sorted;
      ] );
  ]
