(* rtnet.topology: deadline decomposition arithmetic, topology shape
   checks, end-to-end admission, the federated driver, the bridge-queue
   oracle and the CFG-TOPO lint. *)

module Topo = Rtnet_topology.Topo
module Admit = Rtnet_topology.Admit
module Bridge = Rtnet_topology.Bridge
module Driver = Rtnet_topology.Driver
module Decompose = Rtnet_core.Decompose
module Multi_bus = Rtnet_core.Multi_bus
module Fault_plan = Rtnet_channel.Fault_plan
module Config_lint = Rtnet_analysis.Config_lint
module Diagnostic = Rtnet_analysis.Diagnostic
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Scenarios = Rtnet_workload.Scenarios
module Run = Rtnet_stats.Run

let ms = 1_000_000

let split_exn ~policy ~deadline ~bridge_delays ~bounds =
  match Decompose.split ~policy ~deadline ~bridge_delays ~bounds with
  | Ok budgets -> budgets
  | Error e -> Alcotest.fail e

(* -------------------- deadline decomposition -------------------- *)

let test_split_proportional () =
  (* Bounds 30 and 10 split 100 in proportion: 75 / 25. *)
  Alcotest.(check (list int))
    "proportional shares" [ 75; 25 ]
    (split_exn ~policy:Decompose.Proportional ~deadline:100 ~bridge_delays:[]
       ~bounds:[ 30.; 10. ]);
  (* A single hop gets everything. *)
  Alcotest.(check (list int))
    "single hop" [ 100 ]
    (split_exn ~policy:Decompose.Proportional ~deadline:100 ~bridge_delays:[]
       ~bounds:[ 7. ])

let test_split_slack_weighted () =
  (* Each hop gets its bound, the slack (100 − 40 = 60) equally. *)
  Alcotest.(check (list int))
    "equal absolute headroom" [ 60; 40 ]
    (split_exn ~policy:Decompose.Slack_weighted ~deadline:100 ~bridge_delays:[]
       ~bounds:[ 30.; 10. ]);
  (* Odd slack: the first hop gets the spare bit-time. *)
  Alcotest.(check (list int))
    "remainder to the first hop" [ 61; 40 ]
    (split_exn ~policy:Decompose.Slack_weighted ~deadline:101 ~bridge_delays:[]
       ~bounds:[ 30.; 10. ])

let test_split_bridge_delays () =
  (* A 20 bit-time bridge shrinks the splittable budget to 80. *)
  Alcotest.(check (list int))
    "proportional after delay" [ 60; 20 ]
    (split_exn ~policy:Decompose.Proportional ~deadline:100
       ~bridge_delays:[ 20 ] ~bounds:[ 30.; 10. ]);
  Alcotest.(check (list int))
    "slack-weighted after delay" [ 50; 30 ]
    (split_exn ~policy:Decompose.Slack_weighted ~deadline:100
       ~bridge_delays:[ 20 ] ~bounds:[ 30.; 10. ])

let test_split_errors () =
  let expect_error label = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected an error")
  in
  expect_error "no hops"
    (Decompose.split ~policy:Decompose.Proportional ~deadline:100
       ~bridge_delays:[] ~bounds:[]);
  expect_error "negative delay"
    (Decompose.split ~policy:Decompose.Proportional ~deadline:100
       ~bridge_delays:[ -1 ] ~bounds:[ 10.; 10. ]);
  expect_error "deadline below bounds + delays"
    (Decompose.split ~policy:Decompose.Slack_weighted ~deadline:45
       ~bridge_delays:[ 10 ] ~bounds:[ 20.; 20. ])

let test_policy_labels () =
  Alcotest.(check string) "proportional" "proportional"
    (Decompose.policy_label Decompose.Proportional);
  Alcotest.(check string) "slack" "slack-weighted"
    (Decompose.policy_label Decompose.Slack_weighted);
  (match Decompose.policy_of_label "slack" with
  | Ok Decompose.Slack_weighted -> ()
  | _ -> Alcotest.fail "slack alias not accepted");
  match Decompose.policy_of_label "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown label accepted"

(* Soundness invariant under random feasible inputs, both policies:
   every hop covers its bound and the total (with bridge delays) stays
   within the end-to-end deadline. *)
let prop_split_invariant =
  let arb =
    QCheck.make ~print:(fun (p, bounds, delays, extra) ->
        Printf.sprintf "%s bounds=[%s] delays=[%s] extra=%d"
          (Decompose.policy_label p)
          (String.concat ";" (List.map string_of_float bounds))
          (String.concat ";" (List.map string_of_int delays))
          extra)
      QCheck.Gen.(
        oneofl [ Decompose.Proportional; Decompose.Slack_weighted ]
        >>= fun policy ->
        int_range 1 4 >>= fun hops ->
        list_size (return hops) (float_bound_exclusive 1_000_000.)
        >>= fun bounds ->
        list_size (return (hops - 1)) (int_bound 100_000) >>= fun delays ->
        int_bound 1_000_000 >>= fun extra ->
        return (policy, bounds, delays, extra))
  in
  QCheck.Test.make ~name:"split keeps every hop >= bound within d(M)"
    ~count:300 arb
    (fun (policy, bounds, delays, extra) ->
      let need =
        List.fold_left (fun acc b -> acc + int_of_float (Float.ceil b)) 0 bounds
        + List.fold_left ( + ) 0 delays
      in
      let deadline = need + extra in
      match Decompose.split ~policy ~deadline ~bridge_delays:delays ~bounds with
      | Error _ -> false
      | Ok budgets ->
        List.length budgets = List.length bounds
        && List.for_all2
             (fun budget bound -> budget >= int_of_float (Float.ceil bound))
             budgets bounds
        && List.fold_left ( + ) 0 budgets + List.fold_left ( + ) 0 delays
           <= deadline)

(* -------------------- topology shape -------------------- *)

let tree5 =
  Topo.tree ~name:"t5" ~segments:5 ~fanout:2 ~sources:4 ~load:0.05
    ~deadline_windows:16.0 ()

let test_tree_shape () =
  Alcotest.(check int) "segments" 5 (List.length tree5.Topo.tp_segments);
  Alcotest.(check int) "bridges" 4 (List.length tree5.Topo.tp_bridges);
  Alcotest.(check int) "flows" 4 (List.length tree5.Topo.tp_flows);
  Alcotest.(check int) "aggregate sources" 20 (Topo.aggregate_sources tree5);
  Alcotest.(check (list string)) "no route errors" [] (Topo.route_errors tree5);
  (* The grandchild flows really are multi-hop. *)
  match List.rev tree5.Topo.tp_flows with
  | last :: _ ->
    Alcotest.(check (list string))
      "deep flow routed through its parent"
      [ "seg4"; "seg1"; "seg0" ] last.Topo.fl_path
  | [] -> Alcotest.fail "no flows"

let test_toposort_and_levels () =
  let order =
    match Topo.toposort tree5 with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "order covers all" 5 (List.length order);
  (* Every bridge goes from an earlier (upstream) to a later segment. *)
  let index s =
    let rec go i = function
      | [] -> Alcotest.fail ("missing " ^ s)
      | x :: _ when x = s -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b.Topo.br_name ^ " upstream first")
        true
        (index b.Topo.br_from < index b.Topo.br_to))
    tree5.Topo.tp_bridges;
  match Topo.levels tree5 with
  | Error e -> Alcotest.fail e
  | Ok levels ->
    Alcotest.(check (list (list string)))
      "wavefronts by longest path"
      [ [ "seg2"; "seg3"; "seg4" ]; [ "seg1" ]; [ "seg0" ] ]
      (List.map (List.sort compare) levels)

let test_cycle_detected () =
  let seg name =
    match
      Topo.segment_of_workload ~name
        {
          Topo.wk_kind = "uniform";
          wk_size = 2;
          wk_load = 0.05;
          wk_deadline_windows = 8.0;
        }
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let t =
    Topo.create_exn ~name:"loop"
      ~segments:[ seg "a"; seg "b" ]
      ~bridges:
        [
          { Topo.br_name = "ab"; br_from = "a"; br_to = "b"; br_station = 2;
            br_latency = 100; br_capacity = Topo.default_capacity };
          { Topo.br_name = "ba"; br_from = "b"; br_to = "a"; br_station = 2;
            br_latency = 100; br_capacity = Topo.default_capacity };
        ]
      ~flows:[]
  in
  (match Topo.toposort t with
  | Error e ->
    Alcotest.(check bool) "cycle names segments" true
      (Astring_contains.contains e "a")
  | Ok _ -> Alcotest.fail "cycle accepted");
  match Admit.elaborate t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "elaborate accepted a cyclic graph"

let test_route_errors_reported () =
  let bad =
    {
      tree5 with
      Topo.tp_flows =
        [ { Topo.fl_name = "ghost"; fl_cls = 0; fl_path = [ "seg1"; "nowhere" ];
            fl_criticality = 0 } ];
    }
  in
  Alcotest.(check bool) "unroutable flow reported" true
    (Topo.route_errors bad <> []);
  match Admit.elaborate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "elaborate accepted an unroutable flow"

let test_json_roundtrip () =
  let j1 =
    match Topo.to_json tree5 with Ok j -> j | Error e -> Alcotest.fail e
  in
  let t2 =
    match Topo.of_json j1 with Ok t -> t | Error e -> Alcotest.fail e
  in
  let j2 =
    match Topo.to_json t2 with Ok j -> j | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "canonical JSON round-trips"
    (Rtnet_util.Json.to_string j1)
    (Rtnet_util.Json.to_string j2);
  Alcotest.(check int) "segments survive" 5 (List.length t2.Topo.tp_segments)

(* -------------------- admission -------------------- *)

let elaborate_exn ?policy topo =
  match Admit.elaborate ?policy topo with
  | Ok e -> e
  | Error e -> Alcotest.fail e

let test_admit_small_tree () =
  let e = elaborate_exn tree5 in
  Alcotest.(check bool) "admitted" true e.Admit.e_admitted;
  Alcotest.(check int) "one eflow per flow" 4 (List.length e.Admit.e_flows);
  List.iter
    (fun ef ->
      Alcotest.(check bool)
        (ef.Admit.ef_flow.Topo.fl_name ^ " admitted")
        true ef.Admit.ef_admitted;
      Alcotest.(check int)
        (ef.Admit.ef_flow.Topo.fl_name ^ " hop per path segment")
        (List.length ef.Admit.ef_flow.Topo.fl_path)
        (List.length ef.Admit.ef_hops);
      (* The soundness invariant the driver's verdict relies on. *)
      let budgets =
        List.fold_left (fun acc h -> acc + h.Admit.h_budget) 0 ef.Admit.ef_hops
      in
      let delays =
        List.fold_left
          (fun acc h ->
            acc
            + match h.Admit.h_bridge with
              | None -> 0
              | Some b -> b.Topo.br_latency)
          0 ef.Admit.ef_hops
      in
      Alcotest.(check bool)
        (ef.Admit.ef_flow.Topo.fl_name ^ " budgets + delays <= d(M)")
        true
        (budgets + delays <= ef.Admit.ef_deadline);
      (* Hop classes carry their budget as deadline, so the per-hop
         feasibility test is exactly budget >= bound. *)
      List.iter
        (fun h ->
          Alcotest.(check int) "budget is the hop deadline" h.Admit.h_budget
            h.Admit.h_cls.Message.cls_deadline;
          Alcotest.(check bool) "hop feasible" true h.Admit.h_feasible)
        ef.Admit.ef_hops)
    e.Admit.e_flows;
  (* seg0 takes two bridge stations (4 and 5) on top of its 4 sources. *)
  let seg0 = Admit.instance_of e "seg0" in
  Alcotest.(check int) "root grows to host bridges" 6
    seg0.Instance.num_sources;
  (* The report printer mentions the verdict. *)
  let s = Format.asprintf "%a" Admit.pp_report e in
  Alcotest.(check bool) "report mentions flows" true
    (Astring_contains.contains s "flow1")

let test_admit_rejects_overload () =
  let hot =
    Topo.tree ~name:"hot" ~segments:3 ~fanout:2 ~sources:4 ~load:0.6
      ~deadline_windows:2.0 ()
  in
  let e = elaborate_exn hot in
  Alcotest.(check bool) "rejected" false e.Admit.e_admitted;
  Alcotest.(check bool) "some flow not admitted" true
    (List.exists (fun ef -> not ef.Admit.ef_admitted) e.Admit.e_flows)

let test_both_policies_admit_small_tree () =
  List.iter
    (fun policy ->
      let e = elaborate_exn ~policy tree5 in
      Alcotest.(check bool)
        (Decompose.policy_label policy ^ " admits")
        true e.Admit.e_admitted)
    [ Decompose.Proportional; Decompose.Slack_weighted ]

(* -------------------- bridge oracle -------------------- *)

let test_bridge_verdicts () =
  let e = elaborate_exn tree5 in
  let verdicts = Bridge.check e in
  Alcotest.(check int) "one verdict per bridge" 4 (List.length verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool) (v.Bridge.bv_bridge ^ " feasible") true
        v.Bridge.bv_feasible)
    verdicts;
  (* br1 joins seg1 to seg0: crossed by seg1's own flow plus the two
     grandchild flows forwarded through seg1. *)
  match List.find_opt (fun v -> v.Bridge.bv_bridge = "br1") verdicts with
  | Some v ->
    Alcotest.(check int) "three flows across br1" 3 v.Bridge.bv_classes;
    Alcotest.(check bool) "demand accounted" true (v.Bridge.bv_utilization > 0.)
  | None -> Alcotest.fail "br1 verdict missing"

(* -------------------- driver -------------------- *)

let driver_ok = function
  | Ok r -> r
  | Error e -> Alcotest.fail ("driver: " ^ e)

let test_driver_zero_misses_when_admitted () =
  let e = elaborate_exn tree5 in
  let res = driver_ok (Driver.run_seeded e ~seed:11 ~horizon:(5 * ms)) in
  let v = res.Driver.r_verdict in
  Alcotest.(check bool) "chains opened" true (v.Driver.v_messages > 0);
  Alcotest.(check bool) "some delivered" true (v.Driver.v_delivered > 0);
  Alcotest.(check int) "no unexcused end-to-end miss" 0
    (List.length v.Driver.v_misses);
  Alcotest.(check int) "delivered chains all in time" v.Driver.v_delivered
    v.Driver.v_met;
  Alcotest.(check int) "accounting closes" v.Driver.v_messages
    (v.Driver.v_delivered + v.Driver.v_in_flight
    + List.length v.Driver.v_misses);
  Alcotest.(check int) "no local miss either" 0
    res.Driver.r_metrics.Run.deadline_misses;
  Alcotest.(check int) "one outcome per segment" 5
    (List.length res.Driver.r_segments)

let test_driver_domain_transparency () =
  let e = elaborate_exn tree5 in
  let r1 = driver_ok (Driver.run_seeded ~domains:1 e ~seed:11 ~horizon:(5 * ms)) in
  let r4 = driver_ok (Driver.run_seeded ~domains:4 e ~seed:11 ~horizon:(5 * ms)) in
  Alcotest.(check string) "fingerprint identical" r1.Driver.r_fingerprint
    r4.Driver.r_fingerprint;
  Alcotest.(check int) "verdicts identical" r1.Driver.r_verdict.Driver.v_met
    r4.Driver.r_verdict.Driver.v_met

let test_driver_attributes_misses () =
  (* A rejected topology still runs; the predicted overload shows up as
     end-to-end misses attributed to a specific hop of a specific
     flow. *)
  let hot =
    Topo.tree ~name:"hot" ~segments:3 ~fanout:2 ~sources:4 ~load:0.9
      ~deadline_windows:0.5 ()
  in
  let e = elaborate_exn hot in
  Alcotest.(check bool) "rejected" false e.Admit.e_admitted;
  let res = driver_ok (Driver.run_seeded e ~seed:7 ~horizon:(5 * ms)) in
  let v = res.Driver.r_verdict in
  Alcotest.(check bool) "misses observed" true (v.Driver.v_misses <> []);
  List.iter
    (fun m ->
      Alcotest.(check bool) "attributed to a path hop" true
        (List.exists
           (fun ef ->
             ef.Admit.ef_flow.Topo.fl_name = m.Driver.ms_flow
             && m.Driver.ms_hop_index < List.length ef.Admit.ef_hops
             && List.exists
                  (fun h -> h.Admit.h_segment = m.Driver.ms_hop)
                  ef.Admit.ef_hops)
           e.Admit.e_flows))
    v.Driver.v_misses

let test_star_reproduces_multi_bus () =
  (* Satellite: Multi_bus.run is the flowless-star special case of the
     topology driver — same seed, same busses, completion-for-
     completion identical outcome. *)
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 10 * ms in
  let seed = 3 in
  let a = Multi_bus.partition_exn inst ~buses:2 in
  let mb = Multi_bus.run ~seed a ~horizon in
  let star = Topo.of_assignment ~name:"star" a in
  let e = elaborate_exn star in
  let traces =
    List.map
      (fun bus -> (bus.Instance.name, Instance.trace bus ~seed ~horizon))
      (Array.to_list a.Multi_bus.buses)
  in
  let res = driver_ok (Driver.run e ~traces ~horizon) in
  let key c =
    ( (c.Run.c_msg.Message.uid, c.Run.c_msg.Message.cls.Message.cls_id),
      (c.Run.c_start, c.Run.c_finish) )
  in
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "identical completion schedules"
    (List.map key mb.Run.completions)
    (List.map key res.Driver.r_outcome.Run.completions);
  Alcotest.(check int) "same unfinished count"
    (List.length mb.Run.unfinished)
    (List.length res.Driver.r_outcome.Run.unfinished)

(* Any admitted fault-free topology finishes with zero unexcused
   end-to-end misses — the QCheck face of the acceptance criterion. *)
let prop_admitted_runs_clean =
  let arb =
    QCheck.make ~print:(fun (segs, fanout, load, dw, seed) ->
        Printf.sprintf "segs=%d fanout=%d load=%.3f dw=%.1f seed=%d" segs
          fanout load dw seed)
      QCheck.Gen.(
        int_range 2 4 >>= fun segs ->
        int_range 1 2 >>= fun fanout ->
        float_range 0.02 0.08 >>= fun load ->
        float_range 8.0 24.0 >>= fun dw ->
        int_bound 1_000 >>= fun seed -> return (segs, fanout, load, dw, seed))
  in
  QCheck.Test.make ~name:"admitted topology => zero unexcused misses"
    ~count:12 arb
    (fun (segs, fanout, load, dw, seed) ->
      let topo =
        Topo.tree ~name:"q" ~segments:segs ~fanout ~sources:3 ~load
          ~deadline_windows:dw ()
      in
      match Admit.elaborate topo with
      | Error _ -> false
      | Ok e ->
        QCheck.assume e.Admit.e_admitted;
        (match Driver.run_seeded e ~seed ~horizon:(2 * ms) with
        | Error _ -> false
        | Ok res -> res.Driver.r_verdict.Driver.v_misses = []))

(* -------------------- fault plans on topologies -------------------- *)

let tree3 =
  Topo.tree ~name:"t3" ~segments:3 ~fanout:2 ~sources:4 ~load:0.1
    ~deadline_windows:16.0 ()

let with_faults_exn topo plans =
  match Topo.with_faults topo plans with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_with_faults_and_fault_errors () =
  (* Attaching to a known segment composes; station validity is the
     granular fault_errors / CFG-TOPO-FAULT check, exactly like
     route_errors: a declared source or an incoming bridge station is
     fine, anything else is one message per problem. *)
  let bridge_ok =
    with_faults_exn tree3
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(2 * ms)) ]
  in
  Alcotest.(check (list string)) "bridge station accepted" []
    (Topo.fault_errors bridge_ok);
  let source_ok =
    with_faults_exn tree3
      [ ("seg1", Fault_plan.crash ~source:3 ~from_:ms ~until:(2 * ms)) ]
  in
  Alcotest.(check (list string)) "declared source accepted" []
    (Topo.fault_errors source_ok);
  let ghost =
    with_faults_exn tree3
      [ ("seg0", Fault_plan.crash ~source:99 ~from_:ms ~until:(2 * ms)) ]
  in
  Alcotest.(check int) "unknown station reported" 1
    (List.length (Topo.fault_errors ghost));
  (match Admit.elaborate ghost with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "elaborate accepted an invalid fault plan");
  match
    Topo.with_faults tree3
      [ ("nowhere", Fault_plan.crash ~source:0 ~from_:0 ~until:1) ]
  with
  | Error e ->
    Alcotest.(check bool) "unknown segment named" true
      (Astring_contains.contains e "nowhere")
  | Ok _ -> Alcotest.fail "attached a plan to an unknown segment"

let test_json_fault_roundtrip () =
  (* fault_plan / capacity / criticality keys survive the codec — and
     are omitted at their defaults so pre-fault specs stay
     byte-identical. *)
  let t =
    with_faults_exn
      {
        tree3 with
        Topo.tp_bridges =
          List.map
            (fun b ->
              if b.Topo.br_name = "br1" then { b with Topo.br_capacity = 2 }
              else b)
            tree3.Topo.tp_bridges;
        tp_flows =
          List.map
            (fun f ->
              if f.Topo.fl_name = "flow2" then
                { f with Topo.fl_criticality = 3 }
              else f)
            tree3.Topo.tp_flows;
      }
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(2 * ms)) ]
  in
  let json =
    match Topo.to_json t with Ok j -> j | Error e -> Alcotest.fail e
  in
  (match Topo.of_json json with
  | Error e -> Alcotest.fail e
  | Ok t' -> (
    (match Topo.find_segment t' "seg0" with
    | Some { Topo.sg_fault = Some sp; _ } ->
      Alcotest.(check int) "crash window survives" 1
        (List.length sp.Fault_plan.sp_crashes)
    | _ -> Alcotest.fail "fault plan lost in round-trip");
    (match Topo.find_bridge t' ~from_:"seg1" ~to_:"seg0" with
    | Some b -> Alcotest.(check int) "capacity survives" 2 b.Topo.br_capacity
    | None -> Alcotest.fail "br1 lost");
    match List.find_opt (fun f -> f.Topo.fl_name = "flow2") t'.Topo.tp_flows with
    | Some f -> Alcotest.(check int) "criticality survives" 3 f.Topo.fl_criticality
    | None -> Alcotest.fail "flow2 lost"));
  let clean_json =
    match Topo.to_json tree3 with Ok j -> j | Error e -> Alcotest.fail e
  in
  let bytes = Rtnet_util.Json.to_string clean_json in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " omitted at default") false
        (Astring_contains.contains bytes key))
    [ "fault_plan"; "capacity"; "criticality" ]

(* -------------------- bridge oracle edge cases -------------------- *)

let uniform_segment name =
  match
    Topo.segment_of_workload ~name
      { Topo.wk_kind = "uniform"; wk_size = 3; wk_load = 0.1;
        wk_deadline_windows = 8.0 }
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let test_bridge_check_edge_cases () =
  (* A bridge no flow crosses is trivially feasible, even with zero
     store-and-forward latency. *)
  let nf =
    Topo.create_exn ~name:"nf"
      ~segments:[ uniform_segment "a"; uniform_segment "b" ]
      ~bridges:
        [ { Topo.br_name = "ab"; br_from = "a"; br_to = "b"; br_station = 3;
            br_latency = 0; br_capacity = Topo.default_capacity } ]
      ~flows:[]
  in
  (match Bridge.check (elaborate_exn nf) with
  | [ v ] ->
    Alcotest.(check int) "no forwarded classes" 0 v.Bridge.bv_classes;
    Alcotest.(check (float 0.)) "zero utilization" 0. v.Bridge.bv_utilization;
    Alcotest.(check bool) "trivially feasible" true v.Bridge.bv_feasible;
    Alcotest.(check int) "no crash window" 0 v.Bridge.bv_crash_window
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs)));
  (* Saturation boundary: on every verdict, feasible <=> margin <= 1. *)
  let hot =
    Topo.tree ~name:"hot" ~segments:3 ~fanout:2 ~sources:4 ~load:0.9
      ~deadline_windows:0.5 ()
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (v.Bridge.bv_bridge ^ " margin consistent with verdict")
        v.Bridge.bv_feasible
        (v.Bridge.bv_margin <= 1.))
    (Bridge.check (elaborate_exn hot) @ Bridge.check (elaborate_exn tree3))

let test_bridge_check_fault_aware () =
  (* A survivable crash window is priced but admitted; a window that
     swallows the forwarded hop's deadline flips the bridge to
     infeasible with infinite margin.  The fault-blind check ignores
     the plan entirely. *)
  let survivable =
    with_faults_exn tree3
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(2 * ms)) ]
  in
  (match
     List.find_opt
       (fun v -> v.Bridge.bv_bridge = "br1")
       (Bridge.check ~fault_aware:true (elaborate_exn survivable))
   with
  | Some v ->
    Alcotest.(check int) "window deducted" ms v.Bridge.bv_crash_window;
    Alcotest.(check bool) "still feasible" true v.Bridge.bv_feasible
  | None -> Alcotest.fail "br1 verdict missing");
  let swallowing =
    with_faults_exn tree3
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:4096 ~until:5_600_000) ]
  in
  let e = elaborate_exn swallowing in
  (match
     List.find_opt
       (fun v -> v.Bridge.bv_bridge = "br1")
       (Bridge.check ~fault_aware:true e)
   with
  | Some v ->
    Alcotest.(check bool) "overloaded under the outage" false
      v.Bridge.bv_feasible;
    Alcotest.(check bool) "infinite margin" true
      (v.Bridge.bv_margin = Float.infinity)
  | None -> Alcotest.fail "br1 verdict missing");
  match
    List.find_opt (fun v -> v.Bridge.bv_bridge = "br1") (Bridge.check e)
  with
  | Some v ->
    Alcotest.(check bool) "fault-blind check unchanged" true
      v.Bridge.bv_feasible;
    Alcotest.(check int) "no window accounted" 0 v.Bridge.bv_crash_window
  | None -> Alcotest.fail "br1 verdict missing"

(* -------------------- degraded-mode driver -------------------- *)

let test_driver_degraded_restored () =
  (* The acceptance walkthrough: a mid-trace bridge crash on an
     admitted tree completes with zero unexcused misses, a DEGRADED /
     RESTORED transition pair, and a deterministic fingerprint. *)
  let t =
    with_faults_exn tree3
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(2 * ms)) ]
  in
  let e = elaborate_exn t in
  let res = driver_ok (Driver.run_seeded e ~seed:11 ~horizon:(5 * ms)) in
  let v = res.Driver.r_verdict in
  Alcotest.(check (list string)) "no unexcused end-to-end miss" []
    (List.map (fun m -> m.Driver.ms_flow) v.Driver.v_misses);
  Alcotest.(check bool) "degraded transition emitted" true
    (List.exists
       (function
         | Driver.Degraded { dg_bridge = "br1"; dg_from; dg_until; _ } ->
           dg_from = ms && dg_until = 2 * ms
         | _ -> false)
       res.Driver.r_events);
  Alcotest.(check bool) "restored transition emitted" true
    (List.exists
       (function
         | Driver.Restored { rs_bridge = "br1"; rs_at; _ } -> rs_at = 2 * ms
         | _ -> false)
       res.Driver.r_events);
  let res' = driver_ok (Driver.run_seeded e ~seed:11 ~horizon:(5 * ms)) in
  Alcotest.(check string) "fault runs are deterministic"
    res.Driver.r_fingerprint res'.Driver.r_fingerprint

let test_driver_sheds_lowest_criticality () =
  (* Tighter deadlines: the backlog held across the outage no longer
     decomposes for one chain, which is shed (structured, counted) —
     never a silent loss, never an unexcused miss. *)
  let t =
    Topo.tree ~name:"shed" ~segments:3 ~fanout:2 ~sources:4 ~load:0.3
      ~deadline_windows:8.0 ()
  in
  let t =
    with_faults_exn t
      [ ("seg0", Fault_plan.crash ~source:5 ~from_:854_885 ~until:1_402_498) ]
  in
  let e = elaborate_exn ~policy:Decompose.Slack_weighted t in
  let res = driver_ok (Driver.run_seeded e ~seed:11 ~horizon:(5 * ms)) in
  let v = res.Driver.r_verdict in
  Alcotest.(check int) "one chain shed" 1 v.Driver.v_shed;
  Alcotest.(check int) "no unexcused miss" 0 (List.length v.Driver.v_misses);
  Alcotest.(check bool) "shed event names the parked bridge" true
    (List.exists
       (function
         | Driver.Shed { sh_bridge = "br2"; sh_criticality = 0; _ } -> true
         | _ -> false)
       res.Driver.r_events);
  Alcotest.(check int) "accounting closes" v.Driver.v_messages
    (v.Driver.v_delivered + v.Driver.v_in_flight + v.Driver.v_shed
    + List.length v.Driver.v_misses)

let test_driver_bridge_overflow_drops () =
  (* A bounded store-and-forward queue: with capacity 1 and a long
     outage, held hand-offs overflow and are dropped
     oldest-past-deadline first — surfaced as structured bridge_drops,
     not silence. *)
  let t =
    Topo.tree ~name:"ovf" ~segments:3 ~fanout:2 ~sources:4 ~load:0.3
      ~deadline_windows:16.0 ()
  in
  let t =
    {
      t with
      Topo.tp_bridges =
        List.map
          (fun b ->
            if b.Topo.br_name = "br1" then { b with Topo.br_capacity = 1 }
            else b)
          t.Topo.tp_bridges;
    }
  in
  let t =
    with_faults_exn t
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(4 * ms)) ]
  in
  let e = elaborate_exn ~policy:Decompose.Slack_weighted t in
  let res = driver_ok (Driver.run_seeded e ~seed:11 ~horizon:(5 * ms)) in
  let v = res.Driver.r_verdict in
  Alcotest.(check bool) "overflow drops recorded" true
    (v.Driver.v_bridge_drops <> []);
  List.iter
    (fun d ->
      Alcotest.(check string) "drop names the parked bridge" "br1"
        d.Driver.bd_bridge;
      Alcotest.(check string) "drop names the crossing flow" "flow1"
        d.Driver.bd_flow)
    v.Driver.v_bridge_drops;
  Alcotest.(check int) "accounting closes" v.Driver.v_messages
    (v.Driver.v_delivered + v.Driver.v_in_flight + v.Driver.v_shed
    + List.length v.Driver.v_bridge_drops
    + List.length v.Driver.v_misses)

let test_driver_miss_attribution_names_fault () =
  (* On an overloaded tree running under a fault plan, misses on the
     faulty segment's hops carry the fault attribution. *)
  let hot =
    Topo.tree ~name:"hot" ~segments:3 ~fanout:2 ~sources:4 ~load:0.9
      ~deadline_windows:0.5 ()
  in
  let hot =
    with_faults_exn hot
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(2 * ms)) ]
  in
  let e = elaborate_exn hot in
  let res = driver_ok (Driver.run_seeded e ~seed:7 ~horizon:(5 * ms)) in
  let v = res.Driver.r_verdict in
  let faulted =
    List.filter (fun m -> m.Driver.ms_fault <> None) v.Driver.v_misses
  in
  Alcotest.(check bool) "some misses blame the faulty hop" true (faulted <> []);
  List.iter
    (fun m ->
      match m.Driver.ms_fault with
      | Some f ->
        Alcotest.(check bool) "attribution names a bridge or faulty segment"
          true
          (f = "br1" || f = "br2" || f = "seg0")
      | None -> ())
    v.Driver.v_misses

(* -------------------- CFG-TOPO lint -------------------- *)

let test_lint_admitted_clean () =
  let ds = Config_lint.check_topo tree5 in
  Alcotest.(check int) "no errors" 0 (List.length (Diagnostic.errors ds));
  Alcotest.(check bool) "admission summarised" true
    (List.exists
       (fun d ->
         d.Diagnostic.rule_id = "CFG-TOPO"
         && d.Diagnostic.severity = Diagnostic.Info)
       ds)

let test_lint_flags_unroutable () =
  let bad =
    {
      tree5 with
      Topo.tp_flows =
        [ { Topo.fl_name = "ghost"; fl_cls = 0; fl_path = [ "seg1"; "nowhere" ];
            fl_criticality = 0 } ];
    }
  in
  let ds = Config_lint.check_topo bad in
  Alcotest.(check bool) "unroutable is an error" true
    (List.exists
       (fun d -> d.Diagnostic.rule_id = "CFG-TOPO")
       (Diagnostic.errors ds))

let test_lint_flags_budget_overrun () =
  let hot =
    Topo.tree ~name:"hot" ~segments:3 ~fanout:2 ~sources:4 ~load:0.6
      ~deadline_windows:2.0 ()
  in
  let ds = Config_lint.check_topo hot in
  Alcotest.(check bool) "budget below bound is an error" true
    (Diagnostic.has_errors ds)

let test_lint_flags_bad_fault_plan () =
  (* An out-of-segment crash station is a spec bug: CFG-TOPO-FAULT
     error, reported before (and instead of) admission. *)
  let bad =
    with_faults_exn tree3
      [ ("seg0", Fault_plan.crash ~source:99 ~from_:ms ~until:(2 * ms)) ]
  in
  let ds = Config_lint.check_topo bad in
  Alcotest.(check bool) "CFG-TOPO-FAULT error" true
    (List.exists
       (fun d -> d.Diagnostic.rule_id = "CFG-TOPO-FAULT")
       (Diagnostic.errors ds))

let test_lint_warns_unabsorbable_outage () =
  (* A crash window parking a segment's only inbound bridge for longer
     than a crossing flow's end-to-end slack cannot be absorbed: the
     lint warns even though the spec is well-formed. *)
  let chain =
    Topo.tree ~name:"chain" ~segments:2 ~fanout:1 ~sources:4 ~load:0.1
      ~deadline_windows:16.0 ()
  in
  let t =
    with_faults_exn chain
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:4096 ~until:(12 * ms)) ]
  in
  let ds = Config_lint.check_topo t in
  Alcotest.(check bool) "unabsorbable outage warned" true
    (List.exists
       (fun d ->
         d.Diagnostic.rule_id = "CFG-TOPO-FAULT"
         && d.Diagnostic.severity = Diagnostic.Warning)
       ds);
  (* The same window on the survivable scale stays clean. *)
  let ok =
    with_faults_exn chain
      [ ("seg0", Fault_plan.crash ~source:4 ~from_:ms ~until:(2 * ms)) ]
  in
  Alcotest.(check bool) "survivable window not warned" false
    (List.exists
       (fun d ->
         d.Diagnostic.rule_id = "CFG-TOPO-FAULT"
         && d.Diagnostic.severity = Diagnostic.Warning)
       (Config_lint.check_topo ok))

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "split proportional" `Quick test_split_proportional;
        Alcotest.test_case "split slack-weighted" `Quick
          test_split_slack_weighted;
        Alcotest.test_case "split bridge delays" `Quick test_split_bridge_delays;
        Alcotest.test_case "split errors" `Quick test_split_errors;
        Alcotest.test_case "policy labels" `Quick test_policy_labels;
        QCheck_alcotest.to_alcotest prop_split_invariant;
        Alcotest.test_case "tree shape" `Quick test_tree_shape;
        Alcotest.test_case "toposort and levels" `Quick test_toposort_and_levels;
        Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
        Alcotest.test_case "route errors" `Quick test_route_errors_reported;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "admit small tree" `Quick test_admit_small_tree;
        Alcotest.test_case "admit rejects overload" `Quick
          test_admit_rejects_overload;
        Alcotest.test_case "both policies admit" `Quick
          test_both_policies_admit_small_tree;
        Alcotest.test_case "bridge verdicts" `Quick test_bridge_verdicts;
        Alcotest.test_case "driver zero misses" `Slow
          test_driver_zero_misses_when_admitted;
        Alcotest.test_case "driver domain transparency" `Slow
          test_driver_domain_transparency;
        Alcotest.test_case "driver attributes misses" `Slow
          test_driver_attributes_misses;
        Alcotest.test_case "star reproduces multi_bus" `Slow
          test_star_reproduces_multi_bus;
        QCheck_alcotest.to_alcotest prop_admitted_runs_clean;
        Alcotest.test_case "lint admitted clean" `Quick test_lint_admitted_clean;
        Alcotest.test_case "lint unroutable" `Quick test_lint_flags_unroutable;
        Alcotest.test_case "lint budget overrun" `Quick
          test_lint_flags_budget_overrun;
        Alcotest.test_case "with_faults and fault_errors" `Quick
          test_with_faults_and_fault_errors;
        Alcotest.test_case "json fault roundtrip" `Quick
          test_json_fault_roundtrip;
        Alcotest.test_case "bridge check edge cases" `Quick
          test_bridge_check_edge_cases;
        Alcotest.test_case "bridge check fault aware" `Quick
          test_bridge_check_fault_aware;
        Alcotest.test_case "driver degraded restored" `Slow
          test_driver_degraded_restored;
        Alcotest.test_case "driver sheds lowest criticality" `Slow
          test_driver_sheds_lowest_criticality;
        Alcotest.test_case "driver bridge overflow drops" `Slow
          test_driver_bridge_overflow_drops;
        Alcotest.test_case "driver miss attribution names fault" `Slow
          test_driver_miss_attribution_names_fault;
        Alcotest.test_case "lint flags bad fault plan" `Quick
          test_lint_flags_bad_fault_plan;
        Alcotest.test_case "lint warns unabsorbable outage" `Quick
          test_lint_warns_unabsorbable_outage;
      ] );
  ]
