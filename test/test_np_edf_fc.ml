module Np_edf_fc = Rtnet_edf.Np_edf_fc
module Np_edf = Rtnet_edf.Np_edf
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Phy = Rtnet_channel.Phy

let ms = 1_000_000

let cls ?(id = 0) ?(source = 0) ~bits ~deadline ~burst ~window () =
  {
    Message.cls_id = id;
    cls_name = "c" ^ string_of_int id;
    cls_source = source;
    cls_bits = bits;
    cls_deadline = deadline;
    cls_burst = burst;
    cls_window = window;
  }

let law = Arrival.Greedy_burst

let mk classes =
  Instance.create_exn ~name:"np-fc" ~phy:Phy.classic_ethernet
    ~num_sources:
      (1 + List.fold_left (fun a (c, _) -> max a c.Message.cls_source) 0 classes)
    classes

let test_utilization () =
  (* one class: a=2, l'=1160, w=10000 -> 0.232 *)
  let inst = mk [ (cls ~bits:1000 ~deadline:5000 ~burst:2 ~window:10_000 (), law) ] in
  Alcotest.(check (float 1e-9)) "utilization" 0.232 (Np_edf_fc.utilization inst)

let test_dbf_steps () =
  let inst = mk [ (cls ~bits:1000 ~deadline:5000 ~burst:2 ~window:10_000 (), law) ] in
  Alcotest.(check int) "before deadline" 0 (Np_edf_fc.demand_bound inst 4999);
  Alcotest.(check int) "at deadline" (2 * 1160) (Np_edf_fc.demand_bound inst 5000);
  Alcotest.(check int) "next window" (4 * 1160) (Np_edf_fc.demand_bound inst 15_000)

let test_blocking () =
  let inst =
    mk
      [
        (cls ~id:0 ~bits:1000 ~deadline:5000 ~burst:1 ~window:50_000 (), law);
        (cls ~id:1 ~source:1 ~bits:8000 ~deadline:40_000 ~burst:1 ~window:50_000 (), law);
      ]
  in
  Alcotest.(check int) "short horizon blocked by long frame" 8160
    (Np_edf_fc.blocking inst 5000);
  Alcotest.(check int) "past every deadline: none" 0
    (Np_edf_fc.blocking inst 40_000)

let test_overload_infeasible () =
  let inst = mk [ (cls ~bits:10_000 ~deadline:5000 ~burst:2 ~window:10_000 (), law) ] in
  Alcotest.(check bool) "U > 1" true (Np_edf_fc.utilization inst > 1.);
  let v = Np_edf_fc.check inst in
  Alcotest.(check bool) "infeasible" false v.Np_edf_fc.np_feasible;
  Alcotest.(check bool) "no busy period" true (Np_edf_fc.busy_period inst = None)

let test_light_load_feasible () =
  let inst = mk [ (cls ~bits:1000 ~deadline:50_000 ~burst:1 ~window:100_000 (), law) ] in
  let v = Np_edf_fc.check inst in
  Alcotest.(check bool) "feasible" true v.Np_edf_fc.np_feasible;
  Alcotest.(check bool) "margin sane" true
    (v.Np_edf_fc.np_margin > 0. && v.Np_edf_fc.np_margin <= 1.)

let test_tight_deadline_infeasible_despite_low_load () =
  (* A frame that cannot even fit before its own deadline. *)
  let inst = mk [ (cls ~bits:8000 ~deadline:4000 ~burst:1 ~window:1_000_000 (), law) ] in
  Alcotest.(check bool) "U tiny" true (Np_edf_fc.utilization inst < 0.01);
  let v = Np_edf_fc.check inst in
  Alcotest.(check bool) "still infeasible" false v.Np_edf_fc.np_feasible;
  Alcotest.(check int) "critical point is the deadline" 4000 v.Np_edf_fc.critical_t

let test_verdict_agrees_with_oracle_simulation () =
  (* The analytical test and the simulated oracle must agree under the
     peak-load adversary on a grid of loads. *)
  List.iter
    (fun load ->
      let inst =
        Instance.with_law
          (Scenarios.uniform ~sources:4 ~classes_per_source:2 ~load
             ~deadline_windows:1.2)
          Arrival.Greedy_burst
      in
      let v = Np_edf_fc.check inst in
      let horizon = 30 * ms in
      let trace = Instance.trace inst ~seed:3 ~horizon in
      let o = Np_edf.run inst.Instance.phy trace ~horizon in
      let missed =
        List.exists Rtnet_stats.Run.missed o.Rtnet_stats.Run.completions
      in
      if v.Np_edf_fc.np_feasible then
        Alcotest.(check bool)
          (Printf.sprintf "feasible at %.2f -> no simulated miss" load)
          false missed)
    [ 0.2; 0.4; 0.6; 0.8 ]

let test_price_of_distribution () =
  let inst = Scenarios.videoconference ~stations:5 in
  let ddcr_margin =
    (Rtnet_core.Feasibility.check (Rtnet_core.Ddcr_params.default inst) inst)
      .Rtnet_core.Feasibility.worst_margin
  in
  let price = Np_edf_fc.price_of_distribution ~distributed_margin:ddcr_margin inst in
  Alcotest.(check bool) "distribution costs something" true (price > 1.);
  Alcotest.(check bool) "but bounded" true (price < 1000.)

let prop_dbf_dominates_greedy_trace =
  (* Necessity side: the demand the greedy adversary actually releases
     with absolute deadlines within [0, t) never exceeds dbf(t). *)
  let arb =
    QCheck.make
      QCheck.Gen.(
        tup4 (int_range 1 3) (int_range 5_000 60_000) (int_range 3_000 50_000)
          (int_range 500 4_000))
  in
  QCheck.Test.make ~name:"greedy trace demand <= dbf" ~count:100 arb
    (fun (burst, w, d, bits) ->
      let c =
        {
          Message.cls_id = 0;
          cls_name = "g";
          cls_source = 0;
          cls_bits = bits;
          cls_deadline = d;
          cls_burst = burst;
          cls_window = w;
        }
      in
      let inst = mk [ (c, Arrival.Greedy_burst) ] in
      let horizon = 5 * w in
      let trace = Instance.trace inst ~seed:1 ~horizon in
      let wire = Phy.tx_bits Phy.classic_ethernet bits in
      let rec check t =
        t > horizon
        ||
        let released =
          List.fold_left
            (fun acc m ->
              if Message.abs_deadline m <= t then acc + wire else acc)
            0 trace
        in
        released <= Np_edf_fc.demand_bound inst t && check (t + 1709)
      in
      check 1)

let prop_dbf_monotone =
  QCheck.Test.make ~name:"dbf is monotone in t" ~count:200
    QCheck.(triple (int_range 1000 100_000) (int_range 1 4) (int_range 1000 100_000))
    (fun (w, a, d) ->
      let inst = mk [ (cls ~bits:1000 ~deadline:d ~burst:a ~window:w (), law) ] in
      let rec go t prev =
        if t > 300_000 then true
        else begin
          let v = Np_edf_fc.demand_bound inst t in
          v >= prev && go (t + 7919) v
        end
      in
      go 1 0)

let suite =
  [
    ( "np_edf_fc",
      [
        Alcotest.test_case "utilization" `Quick test_utilization;
        Alcotest.test_case "dbf steps" `Quick test_dbf_steps;
        Alcotest.test_case "blocking" `Quick test_blocking;
        Alcotest.test_case "overload" `Quick test_overload_infeasible;
        Alcotest.test_case "light load" `Quick test_light_load_feasible;
        Alcotest.test_case "tight deadline" `Quick
          test_tight_deadline_infeasible_despite_low_load;
        Alcotest.test_case "agrees with oracle sim" `Slow
          test_verdict_agrees_with_oracle_simulation;
        Alcotest.test_case "price of distribution" `Quick
          test_price_of_distribution;
        QCheck_alcotest.to_alcotest prop_dbf_dominates_greedy_trace;
        QCheck_alcotest.to_alcotest prop_dbf_monotone;
      ] );
  ]
