(* The hand-rolled JSON codec underlying the campaign reports.  The
   determinism guarantee of the campaign runner leans on [to_string]
   being canonical and [parse] round-tripping it exactly, so both
   directions are exercised here. *)

module Json = Rtnet_util.Json

let sample =
  Json.Obj
    [
      ("name", Json.String "smoke");
      ("count", Json.Int 42);
      ("ratio", Json.Float 0.25);
      ("neg", Json.Int (-7));
      ("ok", Json.Bool true);
      ("off", Json.Bool false);
      ("nothing", Json.Null);
      ("items", Json.List [ Json.Int 1; Json.Float 1.5; Json.String "x" ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ("nested", Json.Obj [ ("deep", Json.List [ Json.Obj [ ("k", Json.Int 0) ] ]) ]);
    ]

let roundtrip v =
  match Json.parse (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.fail e

let test_roundtrip () =
  Alcotest.(check bool) "structure survives" true (roundtrip sample = sample);
  (* Canonical: a second render of the re-parsed value is byte-equal. *)
  Alcotest.(check string) "canonical" (Json.to_string sample)
    (Json.to_string (roundtrip sample))

let test_pretty_roundtrip () =
  let pretty = Format.asprintf "%a" Json.pp sample in
  match Json.parse pretty with
  | Ok v -> Alcotest.(check bool) "pretty parses back" true (v = sample)
  | Error e -> Alcotest.fail e

let test_int_float_split () =
  let check_tok tok expected =
    match Json.parse tok with
    | Ok v -> Alcotest.(check bool) (tok ^ " kind") true (v = expected)
    | Error e -> Alcotest.fail e
  in
  check_tok "1" (Json.Int 1);
  check_tok "-3" (Json.Int (-3));
  check_tok "1.0" (Json.Float 1.0);
  check_tok "1e3" (Json.Float 1000.);
  check_tok "-2.5E-1" (Json.Float (-0.25))

let test_float_repr_roundtrips () =
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
        Alcotest.(check bool)
          (Printf.sprintf "%h survives" f)
          true
          (Int64.bits_of_float f = Int64.bits_of_float f')
      | Ok _ -> Alcotest.fail "float token parsed as non-float"
      | Error e -> Alcotest.fail e)
    [ 0.; 1.; -1.; 0.1; 1. /. 3.; 1e-300; 1.7976931348623157e308;
      4.9e-324; 243098.3492063492; 0.26103597856596072 ]

let test_non_finite_rejected () =
  List.iter
    (fun f ->
      match Json.to_string (Json.Float f) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.fail ("non-finite float rendered as " ^ s))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_string_escapes () =
  let v = Json.String "a\"b\\c\nd\te\r\x01" in
  Alcotest.(check bool) "escapes survive" true (roundtrip v = v);
  (match Json.parse {|"\u0041\u00e9"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse");
  match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "surrogate pair to UTF-8" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair parse"

let test_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted malformed input " ^ s)
      | Error _ -> ())
    [
      ""; "{"; "[1,"; "{\"a\" 1}"; "\"unterminated"; "tru"; "1 2";
      "{\"a\":1,}"; "\"\\ud83d\""; "nullx";
    ]

let test_accessors () =
  let j = roundtrip sample in
  Alcotest.(check int) "field int" 42
    (Result.get_ok (Result.bind (Json.field "count" j) Json.get_int));
  Alcotest.(check (float 0.)) "int widens to float" 42.
    (Result.get_ok (Result.bind (Json.field "count" j) Json.get_float));
  Alcotest.(check bool) "member missing" true (Json.member "nope" j = None);
  (match Json.field "nope" j with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "field on missing key");
  match Result.bind (Json.field "name" j) Json.get_int with
  | Error msg ->
    Alcotest.(check bool) "type error names types" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "string accepted as int"

let test_to_file_parse_file () =
  let path = Filename.temp_file "rtnet_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Json.to_file path sample;
      match Json.parse_file path with
      | Ok v -> Alcotest.(check bool) "file round-trip" true (v = sample)
      | Error e -> Alcotest.fail e)

let suite =
  [
    ( "json",
      [
        Alcotest.test_case "round-trip" `Quick test_roundtrip;
        Alcotest.test_case "pretty round-trip" `Quick test_pretty_roundtrip;
        Alcotest.test_case "int/float split" `Quick test_int_float_split;
        Alcotest.test_case "float repr" `Quick test_float_repr_roundtrips;
        Alcotest.test_case "non-finite rejected" `Quick test_non_finite_rejected;
        Alcotest.test_case "string escapes" `Quick test_string_escapes;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "file io" `Quick test_to_file_parse_file;
      ] );
  ]
