(* rtnet.campaign: spec codec, grid seeding, worker pool, checkpoint
   resume, report determinism and the regression gate.

   The load-bearing property throughout is determinism: a campaign's
   report (minus wall-clock timing fields) must be a pure function of
   its spec — independent of worker count and of interrupt/resume
   splits. *)

module Json = Rtnet_util.Json
module Spec = Rtnet_campaign.Spec
module Seeding = Rtnet_campaign.Seeding
module Grid = Rtnet_campaign.Grid
module Pool = Rtnet_campaign.Pool
module Checkpoint = Rtnet_campaign.Checkpoint
module Report = Rtnet_campaign.Report
module Runner = Rtnet_campaign.Runner

let tiny =
  {
    Spec.name = "tiny";
    base_seed = 3;
    replicates = 2;
    horizon_ms = 1;
    protocols = [ Spec.Ddcr; Spec.Tdma ];
    scenarios =
      [
        { Spec.sc_kind = "trading"; sc_size = 3; sc_load = 0.3;
          sc_deadline_windows = 2.0; sc_fanout = 1 };
      ];
    variants = [ Spec.default_variant ];
  }

module Fault_plan = Rtnet_channel.Fault_plan

let planned p = { Spec.default_variant with Spec.v_fault_plan = Some p }

(* A fault-plan campaign small enough for determinism tests: one
   protocol, one scenario, clean + wire-noise + crash variants. *)
let faulty =
  let ms = 1_000_000 in
  {
    tiny with
    Spec.name = "faulty";
    protocols = [ Spec.Ddcr ];
    variants =
      [
        Spec.default_variant;
        planned (Fault_plan.iid 0.1);
        planned (Fault_plan.crash ~source:1 ~from_:(ms / 4) ~until:(ms / 2));
      ];
  }

let overloaded =
  {
    tiny with
    Spec.name = "hot";
    protocols = [ Spec.Ddcr ];
    scenarios =
      [
        { Spec.sc_kind = "uniform"; sc_size = 8; sc_load = 5.0;
          sc_deadline_windows = 2.0; sc_fanout = 1 };
      ];
  }

let with_tmp_dir f =
  let dir = Filename.temp_file "rtnet_campaign" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run_exn ?(jobs = 1) ?journal ?(resume = false) ?max_cells spec ~out =
  let options =
    {
      (Runner.default_options ~out) with
      Runner.jobs;
      journal;
      resume;
      max_cells;
    }
  in
  match Runner.run options spec with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail (Format.asprintf "%a" Runner.pp_error e)

let complete_exn ?jobs ?journal ?resume ?max_cells spec ~out =
  match run_exn ?jobs ?journal ?resume ?max_cells spec ~out with
  | Runner.Complete report -> report
  | Runner.Interrupted _ -> Alcotest.fail "unexpected interruption"

(* -------------------- spec -------------------- *)

let test_spec_roundtrip () =
  List.iter
    (fun (name, spec) ->
      match Spec.of_json (Spec.to_json spec) with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok spec' ->
        Alcotest.(check bool) (name ^ " round-trips") true (spec = spec');
        Alcotest.(check string)
          (name ^ " hash stable")
          (Spec.hash spec) (Spec.hash spec'))
    Spec.builtins

let test_spec_validate () =
  let expect_error what spec =
    match Spec.validate spec with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("validate accepted " ^ what)
  in
  Alcotest.(check bool) "builtins validate" true
    (List.for_all
       (fun (_, s) -> Spec.validate s = Ok ())
       Spec.builtins);
  expect_error "empty protocols" { tiny with Spec.protocols = [] };
  expect_error "zero replicates" { tiny with Spec.replicates = 0 };
  expect_error "duplicate protocol"
    { tiny with Spec.protocols = [ Spec.Ddcr; Spec.Ddcr ] };
  expect_error "bad fault rate"
    { tiny with
      Spec.variants = [ { Spec.default_variant with v_fault_rate = 1.5 } ] };
  expect_error "unknown kind"
    { tiny with
      Spec.scenarios =
        [ { Spec.sc_kind = "nope"; sc_size = 2; sc_load = 0.3;
            sc_deadline_windows = 2.0; sc_fanout = 1 } ] }

let test_spec_load_file () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "spec.json" in
      Json.to_file path (Spec.to_json tiny);
      (match Spec.load_file path with
      | Ok s -> Alcotest.(check bool) "file round-trip" true (s = tiny)
      | Error e -> Alcotest.fail e);
      (* Optional fields default. *)
      let oc = open_out path in
      output_string oc
        {|{"name":"mini","protocols":["tdma"],
           "scenarios":[{"kind":"trading","size":3}]}|};
      close_out oc;
      match Spec.load_file path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        Alcotest.(check int) "default replicates" 1 s.Spec.replicates;
        Alcotest.(check bool) "default variant" true
          (s.Spec.variants = [ Spec.default_variant ]))

let test_fault_plan_spec_validate () =
  let expect_error what spec =
    match Spec.validate spec with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("validate accepted " ^ what)
  in
  Alcotest.(check bool) "faulty validates" true (Spec.validate faulty = Ok ());
  expect_error "fault rate and fault plan together"
    {
      faulty with
      Spec.variants =
        [
          {
            Spec.default_variant with
            v_fault_rate = 0.1;
            v_fault_plan = Some (Fault_plan.iid 0.1);
          };
        ];
    };
  expect_error "local faults under a protocol without replicated state"
    { faulty with Spec.protocols = [ Spec.Ddcr; Spec.Tdma ] };
  expect_error "invalid plan parameters"
    { faulty with Spec.variants = [ planned (Fault_plan.iid 1.5) ] };
  expect_error "crash window beyond the horizon"
    {
      faulty with
      Spec.variants =
        [
          planned
            (Fault_plan.crash ~source:1 ~from_:0 ~until:(10 * 1_000_000));
        ];
    };
  (* Wire-only plans are protocol-agnostic: Beb is allowed alongside. *)
  Alcotest.(check bool) "wire faults allow beb" true
    (Spec.validate
       {
         faulty with
         Spec.protocols = [ Spec.Ddcr; Spec.Beb ];
         variants = [ planned (Fault_plan.iid 0.1) ];
       }
    = Ok ());
  (* Variant labels name the plan, so cell keys stay unique. *)
  let labels = List.map Spec.variant_label faulty.Spec.variants in
  Alcotest.(check int) "labels unique" (List.length labels)
    (List.length (List.sort_uniq compare labels))

(* -------------------- grid & seeding -------------------- *)

let test_grid_cells () =
  let cells = Grid.cells tiny in
  Alcotest.(check int) "cell count" (Spec.cell_count tiny)
    (Array.length cells);
  Array.iteri
    (fun i c -> Alcotest.(check int) "dense indices" i c.Grid.index)
    cells;
  let keys = Array.to_list (Array.map Grid.key cells) in
  Alcotest.(check int) "keys unique"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_trace_seed_protocol_blind () =
  (* Protocols compare on identical traces: the trace seed must not
     depend on the protocol coordinate, while the protocol seed must. *)
  let cells = Array.to_list (Grid.cells tiny) in
  let ddcr = List.filter (fun c -> c.Grid.protocol = Spec.Ddcr) cells in
  let tdma = List.filter (fun c -> c.Grid.protocol = Spec.Tdma) cells in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "same trace seed" a.Grid.trace_seed
        b.Grid.trace_seed;
      Alcotest.(check bool) "distinct protocol seed" true
        (a.Grid.protocol_seed <> b.Grid.protocol_seed))
    ddcr tdma;
  (* Replicates draw distinct traces. *)
  match ddcr with
  | r0 :: r1 :: _ ->
    Alcotest.(check bool) "replicates differ" true
      (r0.Grid.trace_seed <> r1.Grid.trace_seed)
  | _ -> Alcotest.fail "expected two ddcr replicates"

let test_seeding_domains_separated () =
  let t = Seeding.trace_seed ~base:5 ~scenario:0 ~variant:0 ~replicate:0 in
  let p =
    Seeding.protocol_seed ~base:5 ~scenario:0 ~variant:0 ~replicate:0
      ~protocol:0
  in
  let f = Seeding.fault_seed ~base:5 ~scenario:0 ~variant:0 ~replicate:0 in
  Alcotest.(check bool) "trace and protocol domains disjoint" true (t <> p);
  Alcotest.(check bool) "fault domain disjoint" true (f <> t && f <> p)

let test_fault_seed_protocol_blind () =
  (* Every protocol must face the same fault sample path, so the fault
     seed — like the trace seed — ignores the protocol coordinate. *)
  let spec =
    {
      faulty with
      Spec.name = "wire";
      protocols = [ Spec.Ddcr; Spec.Beb ];
      variants = [ planned (Fault_plan.iid 0.1) ];
    }
  in
  let cells = Array.to_list (Grid.cells spec) in
  let ddcr = List.filter (fun c -> c.Grid.protocol = Spec.Ddcr) cells in
  let beb = List.filter (fun c -> c.Grid.protocol = Spec.Beb) cells in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "same fault seed" a.Grid.fault_seed
        b.Grid.fault_seed)
    ddcr beb;
  match ddcr with
  | r0 :: r1 :: _ ->
    Alcotest.(check bool) "replicates draw distinct fault paths" true
      (r0.Grid.fault_seed <> r1.Grid.fault_seed)
  | _ -> Alcotest.fail "expected two ddcr replicates"

(* -------------------- pool -------------------- *)

let collect_events ~jobs ?max_results f tasks =
  let events = ref [] in
  let n =
    Pool.map ~jobs ?max_results ~on_event:(fun e -> events := e :: !events) f
      tasks
  in
  (n, List.rev !events)

let test_pool_matches_serial () =
  let tasks = Array.init 23 (fun i -> i) in
  let f x = x * x in
  let normalize evs =
    List.sort compare
      (List.map
         (function
           | Pool.Result (i, _, v) -> (i, v)
           | Pool.Failed (i, _, msg) -> Alcotest.fail (Printf.sprintf "task %d: %s" i msg))
         evs)
  in
  let n1, e1 = collect_events ~jobs:1 f tasks in
  let n3, e3 = collect_events ~jobs:3 f tasks in
  Alcotest.(check int) "serial count" 23 n1;
  Alcotest.(check int) "parallel count" 23 n3;
  Alcotest.(check bool) "same result set" true (normalize e1 = normalize e3);
  Alcotest.(check bool) "results correct" true
    (List.for_all (fun (i, v) -> v = i * i) (normalize e1))

let test_pool_task_exception_reported () =
  let tasks = Array.init 5 (fun i -> i) in
  let f x = if x = 2 then failwith "boom" else x in
  let n, events = collect_events ~jobs:2 f tasks in
  Alcotest.(check int) "every task produced an event" 5 n;
  let failed =
    List.filter_map
      (function
        | Pool.Failed (i, _, msg) -> Some (i, msg)
        | Pool.Result _ -> None)
      events
  in
  match failed with
  | [ (2, msg) ] ->
    Alcotest.(check bool) "exception text carried" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected exactly task 2 to fail"

let test_pool_max_results_stops_early () =
  let tasks = Array.init 50 (fun i -> i) in
  let n, events = collect_events ~jobs:1 ~max_results:7 Fun.id tasks in
  Alcotest.(check int) "stopped at cap" 7 n;
  (* jobs=1 makes the surviving prefix deterministic: tasks 0..6. *)
  Alcotest.(check (list int)) "deterministic prefix"
    [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.map
       (function Pool.Result (i, _, _) -> i | Pool.Failed _ -> -1)
       events)

let test_pool_empty_and_bad_jobs () =
  let n, events = collect_events ~jobs:4 Fun.id [||] in
  Alcotest.(check int) "empty task array" 0 n;
  Alcotest.(check int) "no events" 0 (List.length events);
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.map: jobs < 1")
    (fun () -> ignore (Pool.map ~jobs:0 ~on_event:ignore Fun.id [| 1 |]))

let test_pool_worker_crash_retried () =
  (* A worker killed mid-task must not sink the run: its undelivered
     tasks are reported via [on_retry] and re-run on a spare worker.
     The flag file makes the crash happen only on the first attempt. *)
  let flag = Filename.temp_file "rtnet_pool_crash" ".flag" in
  Sys.remove flag;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists flag then Sys.remove flag)
    (fun () ->
      let tasks = Array.init 8 (fun i -> i) in
      let f x =
        if x = 3 && not (Sys.file_exists flag) then begin
          let oc = open_out flag in
          close_out oc;
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        x * x
      in
      let retried = ref [] in
      let events = ref [] in
      let n =
        Pool.map ~jobs:2
          ~on_retry:(fun missing -> retried := missing :: !retried)
          ~on_event:(fun e -> events := e :: !events)
          f tasks
      in
      Alcotest.(check int) "every task delivered" 8 n;
      let results =
        List.sort compare
          (List.filter_map
             (function
               | Pool.Result (i, _, v) -> Some (i, v)
               | Pool.Failed (i, _, msg) ->
                 Alcotest.fail (Printf.sprintf "task %d failed: %s" i msg))
             !events)
      in
      Alcotest.(check bool) "results complete and correct" true
        (results = List.init 8 (fun i -> (i, i * i)));
      (* jobs=2 round-robin: the killed worker held positions 1,3,5,7
         and died at 3, so exactly 3,5,7 go to the spare worker. *)
      match !retried with
      | [ missing ] ->
        Alcotest.(check (list int)) "undelivered positions retried"
          [ 3; 5; 7 ] missing
      | rounds ->
        Alcotest.fail
          (Printf.sprintf "expected one retry round, saw %d"
             (List.length rounds)))

let test_pool_worker_crash_twice_aborts () =
  (* No flag file: the poisoned task kills its worker on the retry too,
     and only then does the coordinator give up. *)
  let tasks = [| 0; 1; 2 |] in
  let f x =
    if x = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    x
  in
  let retried = ref 0 in
  match
    Pool.map ~jobs:1 ~on_retry:(fun _ -> incr retried) ~on_event:ignore f tasks
  with
  | (_ : int) -> Alcotest.fail "expected Failure after the second crash"
  | exception Failure msg ->
    Alcotest.(check int) "retried exactly once" 1 !retried;
    Alcotest.(check bool) "diagnostic names the repeated death" true
      (Astring_contains.contains msg "worker died twice")

(* -------------------- supervised pool -------------------- *)

let collect_sevents ?watchdog_s ?retries ?backoff_s ?on_retry ?should_stop
    ~jobs f tasks =
  let events = ref [] in
  let n =
    Pool.supervise ~jobs ?watchdog_s ?retries ?backoff_s ?on_retry ?should_stop
      ~on_event:(fun e -> events := e :: !events)
      f tasks
  in
  (n, List.rev !events)

let test_supervise_hung_task_gives_up () =
  (* A deliberately hung task must be killed at the watchdog timeout,
     retried with backoff, and — once the retry budget is spent —
     reported as a structured [Gave_up] while every other task still
     completes: the search must degrade, never abort. *)
  let tasks = Array.init 4 (fun i -> i) in
  let f x =
    if x = 1 then Unix.sleepf 60.;
    x * 10
  in
  let retries_seen = ref [] in
  let n, events =
    collect_sevents ~jobs:2 ~watchdog_s:0.2 ~retries:1 ~backoff_s:0.01
      ~on_retry:(fun ~position ~attempt ~reason ->
        retries_seen := (position, attempt, reason) :: !retries_seen)
      f tasks
  in
  Alcotest.(check int) "every task produced exactly one event" 4 n;
  let completed =
    List.sort compare
      (List.filter_map
         (function Pool.Completed (i, _, v) -> Some (i, v) | _ -> None)
         events)
  in
  Alcotest.(check bool) "unhung tasks all completed" true
    (completed = [ (0, 0); (2, 20); (3, 30) ]);
  (match
     List.filter_map
       (function
         | Pool.Gave_up { position; attempts; reason } ->
           Some (position, attempts, reason)
         | _ -> None)
       events
   with
  | [ (1, 2, Pool.Timed_out _) ] -> ()
  | [ (p, a, r) ] ->
    Alcotest.fail
      (Printf.sprintf "wrong give-up: position %d attempts %d (%s)" p a
         (Pool.reason_text r))
  | gs ->
    Alcotest.fail (Printf.sprintf "expected one give-up, saw %d"
                     (List.length gs)));
  match !retries_seen with
  | [ (1, 1, reason) ] ->
    Alcotest.(check bool) "retry reason names the watchdog" true
      (Astring_contains.contains reason "watchdog")
  | rs ->
    Alcotest.fail
      (Printf.sprintf "expected one retry of position 1, saw %d"
         (List.length rs))

let test_supervise_task_error_not_retried () =
  (* An exception from the task function is deterministic: retrying
     would just raise again, so it is reported immediately. *)
  let tasks = Array.init 3 (fun i -> i) in
  let f x = if x = 1 then failwith "boom" else x in
  let retried = ref 0 in
  let n, events =
    collect_sevents ~jobs:2 ~retries:2
      ~on_retry:(fun ~position:_ ~attempt:_ ~reason:_ -> incr retried)
      f tasks
  in
  Alcotest.(check int) "all events" 3 n;
  Alcotest.(check int) "no retry wasted on a deterministic error" 0 !retried;
  match
    List.filter_map
      (function Pool.Task_error (i, _, m) -> Some (i, m) | _ -> None)
      events
  with
  | [ (1, msg) ] ->
    Alcotest.(check bool) "exception text carried" true
      (Astring_contains.contains msg "boom")
  | _ -> Alcotest.fail "expected exactly task 1 to error"

let test_supervise_lost_worker_retried () =
  (* A worker killed mid-task is indistinguishable from a crash; the
     retry must succeed when the fault was transient (flag file). *)
  let flag = Filename.temp_file "rtnet_supervise_crash" ".flag" in
  Sys.remove flag;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists flag then Sys.remove flag)
    (fun () ->
      let tasks = Array.init 3 (fun i -> i) in
      let f x =
        if x = 2 && not (Sys.file_exists flag) then begin
          let oc = open_out flag in
          close_out oc;
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        x + 100
      in
      let retried = ref [] in
      let n, events =
        collect_sevents ~jobs:2 ~retries:1 ~backoff_s:0.01
          ~on_retry:(fun ~position ~attempt:_ ~reason:_ ->
            retried := position :: !retried)
          f tasks
      in
      Alcotest.(check int) "all events" 3 n;
      Alcotest.(check (list int)) "position 2 retried once" [ 2 ] !retried;
      let completed =
        List.sort compare
          (List.filter_map
             (function Pool.Completed (i, _, v) -> Some (i, v) | _ -> None)
             events)
      in
      Alcotest.(check bool) "retry delivered the result" true
        (completed = [ (0, 100); (1, 101); (2, 102) ]))

let test_supervise_should_stop_drains () =
  (* Once [should_stop] fires, no new task launches; the caller gets
     the events already earned — partial results, no exception. *)
  let tasks = Array.init 16 (fun i -> i) in
  let emitted = ref 0 in
  let n =
    Pool.supervise ~jobs:2
      ~should_stop:(fun () -> !emitted >= 3)
      ~on_event:(fun _ -> incr emitted)
      (fun x -> x)
      tasks
  in
  Alcotest.(check bool) "stopped well short of the full task set" true
    (n < 16 && n >= 3)

(* -------------------- runner determinism -------------------- *)

let stripped_bytes report =
  Json.to_string (Report.strip_timings (Report.to_json report))

let test_parallel_serial_identical () =
  with_tmp_dir (fun dir ->
      let r1 = complete_exn tiny ~jobs:1 ~out:(Filename.concat dir "j1.json") in
      let r4 = complete_exn tiny ~jobs:4 ~out:(Filename.concat dir "j4.json") in
      Alcotest.(check string) "fingerprints agree" (Report.fingerprint r1)
        (Report.fingerprint r4);
      Alcotest.(check string) "timing-stripped bytes identical"
        (stripped_bytes r1) (stripped_bytes r4);
      (* And the on-disk reports reload to the same fingerprint. *)
      match Report.load ~path:(Filename.concat dir "j4.json") with
      | Error e -> Alcotest.fail e
      | Ok r ->
        Alcotest.(check string) "disk round-trip" (Report.fingerprint r1)
          (Report.fingerprint r))

let test_interrupt_and_resume () =
  with_tmp_dir (fun dir ->
      let out = Filename.concat dir "bench.json" in
      let fresh =
        complete_exn tiny ~jobs:1 ~out:(Filename.concat dir "fresh.json")
      in
      (match run_exn tiny ~jobs:1 ~max_cells:2 ~out with
      | Runner.Interrupted { completed; total } ->
        Alcotest.(check int) "partial progress" 2 completed;
        Alcotest.(check int) "total known" (Spec.cell_count tiny) total
      | Runner.Complete _ -> Alcotest.fail "expected interruption");
      Alcotest.(check bool) "journal kept" true
        (Sys.file_exists (Checkpoint.journal_path ~out));
      Alcotest.(check bool) "no report yet" false (Sys.file_exists out);
      let resumed = complete_exn tiny ~jobs:1 ~resume:true ~out in
      Alcotest.(check string) "resume reproduces the fresh run"
        (Report.fingerprint fresh) (Report.fingerprint resumed);
      Alcotest.(check bool) "journal removed on completion" false
        (Sys.file_exists (Checkpoint.journal_path ~out)))

let test_checkpoint_rejects_other_spec () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "x.ckpt" in
      let oc = Checkpoint.open_for_append ~path ~spec:tiny in
      Checkpoint.append oc ~index:0 ~key:"k" Json.Null;
      close_out oc;
      (match Checkpoint.load ~path ~spec:tiny () with
      | Ok [ (0, Json.Null) ] -> ()
      | Ok _ -> Alcotest.fail "journal content lost"
      | Error e -> Alcotest.fail e);
      match Checkpoint.load ~path ~spec:{ tiny with Spec.base_seed = 99 } () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "journal accepted under a different spec")

let test_checkpoint_tolerates_torn_tail () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "torn.ckpt" in
      let oc = Checkpoint.open_for_append ~path ~spec:tiny in
      Checkpoint.append oc ~index:0 ~key:"a" (Json.Int 1);
      close_out oc;
      (* Simulate a kill mid-append: half a JSON line at the tail. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc {|{"cell":1,"key":"b","res|};
      close_out oc;
      let warnings = ref [] in
      (match
         Checkpoint.load ~on_warning:(fun w -> warnings := w :: !warnings)
           ~path ~spec:tiny ()
       with
      | Ok [ (0, Json.Int 1) ] -> ()
      | Ok _ -> Alcotest.fail "torn tail mishandled"
      | Error e -> Alcotest.fail e);
      (* The skip is announced, and the diagnostic says the cell will
         re-run rather than silently vanish. *)
      match !warnings with
      | [ w ] ->
        Alcotest.(check bool) "warning names the torn line" true
          (Astring_contains.contains w "torn");
        Alcotest.(check bool) "warning promises a re-run" true
          (Astring_contains.contains w "re-run")
      | ws ->
        Alcotest.fail
          (Printf.sprintf "expected one warning, saw %d" (List.length ws)))

let test_checkpoint_tolerates_torn_header () =
  (* A crash during the very first write can leave only a partial
     header line: resuming from that journal must behave like a fresh
     start (no completed cells), not abort the campaign. *)
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "header.ckpt" in
      let oc = open_out path in
      output_string oc {|{"campaign_journal":1,"fing|};
      close_out oc;
      let warnings = ref [] in
      match
        Checkpoint.load ~on_warning:(fun w -> warnings := w :: !warnings)
          ~path ~spec:tiny ()
      with
      | Ok [] ->
        Alcotest.(check int) "torn header announced" 1 (List.length !warnings)
      | Ok _ -> Alcotest.fail "entries conjured from a torn header"
      | Error e -> Alcotest.fail e)

let test_checkpoint_failed_marker_replay () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "f.ckpt" in
      let oc = Checkpoint.open_for_append ~path ~spec:tiny in
      Checkpoint.append oc ~index:0 ~key:"a" (Json.Int 1);
      Checkpoint.append_failed oc ~index:0 ~key:"a" ~reason:"worker died";
      Checkpoint.append oc ~index:1 ~key:"b" (Json.Int 2);
      close_out oc;
      (* The failed marker voids cell 0's earlier result. *)
      (match Checkpoint.load ~path ~spec:tiny () with
      | Ok [ (1, Json.Int 2) ] -> ()
      | Ok entries ->
        Alcotest.fail
          (Printf.sprintf "failed marker not replayed: %d entries survive"
             (List.length entries))
      | Error e -> Alcotest.fail e);
      (* A later result — the in-run retry succeeding — supersedes it. *)
      let oc = Checkpoint.open_for_append ~path ~spec:tiny in
      Checkpoint.append oc ~index:0 ~key:"a" (Json.Int 3);
      close_out oc;
      match Checkpoint.load ~path ~spec:tiny () with
      | Ok entries ->
        Alcotest.(check bool) "retry result recorded" true
          (List.sort compare entries = [ (0, Json.Int 3); (1, Json.Int 2) ])
      | Error e -> Alcotest.fail e)

let test_fault_campaign_deterministic () =
  (* A campaign whose variants carry fault plans must stay a pure
     function of its spec: same report bytes (minus timing) at any
     worker count, and across an interrupt/resume split. *)
  with_tmp_dir (fun dir ->
      let r1 =
        complete_exn faulty ~jobs:1 ~out:(Filename.concat dir "j1.json")
      in
      let r4 =
        complete_exn faulty ~jobs:4 ~out:(Filename.concat dir "j4.json")
      in
      Alcotest.(check string) "fingerprints agree" (Report.fingerprint r1)
        (Report.fingerprint r4);
      Alcotest.(check string) "timing-stripped bytes identical"
        (stripped_bytes r1) (stripped_bytes r4);
      let out = Filename.concat dir "resumed.json" in
      (match run_exn faulty ~jobs:2 ~max_cells:3 ~out with
      | Runner.Interrupted { completed; total } ->
        Alcotest.(check int) "partial progress" 3 completed;
        Alcotest.(check int) "total known" (Spec.cell_count faulty) total
      | Runner.Complete _ -> Alcotest.fail "expected interruption");
      let resumed = complete_exn faulty ~jobs:2 ~resume:true ~out in
      Alcotest.(check string) "resume reproduces the fresh run"
        (Report.fingerprint r1) (Report.fingerprint resumed))

let test_lint_gate_rejects_overload () =
  with_tmp_dir (fun dir ->
      let options =
        Runner.default_options ~out:(Filename.concat dir "hot.json")
      in
      match Runner.run { options with Runner.jobs = 1 } overloaded with
      | Error (Runner.Lint_rejected diags) ->
        Alcotest.(check bool) "diagnostics carried" true (diags <> [])
      | Error e ->
        Alcotest.fail (Format.asprintf "wrong error: %a" Runner.pp_error e)
      | Ok _ -> Alcotest.fail "overloaded campaign accepted")

(* -------------------- regression gate -------------------- *)

let inject_regression report =
  match report.Report.cells with
  | first :: rest ->
    let m = first.Report.ce_result.Grid.r_metrics in
    let worse =
      { m with Rtnet_stats.Run.miss_ratio = m.Rtnet_stats.Run.miss_ratio +. 0.4 }
    in
    {
      report with
      Report.cells =
        { first with
          Report.ce_result =
            { first.Report.ce_result with Grid.r_metrics = worse } }
        :: rest;
    }
  | [] -> Alcotest.fail "empty report"

let test_compare_gate () =
  with_tmp_dir (fun dir ->
      let r = complete_exn tiny ~jobs:1 ~out:(Filename.concat dir "b.json") in
      let tol = Report.default_tolerance in
      (match Report.compare_reports ~tolerance:tol ~baseline:r ~current:r with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "self-comparison regressed"
      | Error e -> Alcotest.fail e);
      let bad = inject_regression r in
      (match Report.compare_reports ~tolerance:tol ~baseline:r ~current:bad with
      | Ok [ reg ] ->
        Alcotest.(check string) "metric named" "miss_ratio"
          reg.Report.reg_metric
      | Ok regs ->
        Alcotest.fail
          (Printf.sprintf "expected 1 regression, found %d" (List.length regs))
      | Error e -> Alcotest.fail e);
      (* An improvement is not a regression. *)
      (match Report.compare_reports ~tolerance:tol ~baseline:bad ~current:r with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "improvement flagged"
      | Error e -> Alcotest.fail e);
      (* A loose tolerance forgives the same delta. *)
      let loose = { tol with Report.tol_miss_ratio = 0.5 } in
      match Report.compare_reports ~tolerance:loose ~baseline:r ~current:bad with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "tolerance ignored"
      | Error e -> Alcotest.fail e)

let test_compare_rejects_mismatched_specs () =
  with_tmp_dir (fun dir ->
      let a = complete_exn tiny ~jobs:1 ~out:(Filename.concat dir "a.json") in
      let other = { tiny with Spec.base_seed = 99 } in
      let b = complete_exn other ~jobs:1 ~out:(Filename.concat dir "b.json") in
      match
        Report.compare_reports ~tolerance:Report.default_tolerance ~baseline:a
          ~current:b
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "cross-spec comparison accepted")

let suite =
  [
    ( "campaign",
      [
        Alcotest.test_case "spec json round-trip" `Quick test_spec_roundtrip;
        Alcotest.test_case "spec validation" `Quick test_spec_validate;
        Alcotest.test_case "fault-plan spec validation" `Quick
          test_fault_plan_spec_validate;
        Alcotest.test_case "spec file loading" `Quick test_spec_load_file;
        Alcotest.test_case "grid cells" `Quick test_grid_cells;
        Alcotest.test_case "trace seed protocol-blind" `Quick
          test_trace_seed_protocol_blind;
        Alcotest.test_case "seeding domains" `Quick
          test_seeding_domains_separated;
        Alcotest.test_case "fault seed protocol-blind" `Quick
          test_fault_seed_protocol_blind;
        Alcotest.test_case "pool parallel = serial" `Quick
          test_pool_matches_serial;
        Alcotest.test_case "pool task exception" `Quick
          test_pool_task_exception_reported;
        Alcotest.test_case "pool early stop" `Quick
          test_pool_max_results_stops_early;
        Alcotest.test_case "pool edge cases" `Quick test_pool_empty_and_bad_jobs;
        Alcotest.test_case "pool worker crash retried" `Quick
          test_pool_worker_crash_retried;
        Alcotest.test_case "pool worker crash twice aborts" `Quick
          test_pool_worker_crash_twice_aborts;
        Alcotest.test_case "-j1 = -j4" `Quick test_parallel_serial_identical;
        Alcotest.test_case "interrupt and resume" `Quick
          test_interrupt_and_resume;
        Alcotest.test_case "checkpoint spec guard" `Quick
          test_checkpoint_rejects_other_spec;
        Alcotest.test_case "checkpoint torn tail" `Quick
          test_checkpoint_tolerates_torn_tail;
        Alcotest.test_case "checkpoint torn header" `Quick
          test_checkpoint_tolerates_torn_header;
        Alcotest.test_case "supervise hung task gives up" `Quick
          test_supervise_hung_task_gives_up;
        Alcotest.test_case "supervise task error not retried" `Quick
          test_supervise_task_error_not_retried;
        Alcotest.test_case "supervise lost worker retried" `Quick
          test_supervise_lost_worker_retried;
        Alcotest.test_case "supervise should_stop drains" `Quick
          test_supervise_should_stop_drains;
        Alcotest.test_case "checkpoint failed-marker replay" `Quick
          test_checkpoint_failed_marker_replay;
        Alcotest.test_case "fault campaign deterministic" `Quick
          test_fault_campaign_deterministic;
        Alcotest.test_case "lint gate" `Quick test_lint_gate_rejects_overload;
        Alcotest.test_case "regression gate" `Quick test_compare_gate;
        Alcotest.test_case "cross-spec compare" `Quick
          test_compare_rejects_mismatched_specs;
      ] );
  ]
