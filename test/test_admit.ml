(* rtnet.admit: the incremental admission engine, the crash-safe
   decision journal, the overload-protected service loop, the CFG-ADMIT
   lint rules and the admission chaos closure (generator, candidate,
   shrinker, repro artifacts). *)

module Json = Rtnet_util.Json
module Request = Rtnet_admit.Request
module Engine = Rtnet_admit.Engine
module Journal = Rtnet_admit.Journal
module Service = Rtnet_admit.Service
module Config_lint = Rtnet_analysis.Config_lint
module Diagnostic = Rtnet_analysis.Diagnostic
module Oracle = Rtnet_analysis.Oracle
module Generator = Rtnet_chaos.Generator
module Candidate = Rtnet_chaos.Candidate
module Shrink = Rtnet_chaos.Shrink
module Repro = Rtnet_chaos.Repro
module Ddcr_params = Rtnet_core.Ddcr_params

let ok_exn = function Ok v -> v | Error e -> Alcotest.fail e

let phy = ok_exn (Request.phy_of_name "gigabit-ethernet")

(* Same derivation as ddcr_admit gen's defaults: horizon c·F past the
   largest deadline sample_churn can emit. *)
let good_params ~sources =
  let rec pow4 n = if n >= 2 * sources then n else pow4 (4 * n) in
  let q = pow4 4 in
  let static_indices =
    Array.init sources (fun i ->
        let rec walk j acc =
          if j >= q then List.rev acc else walk (j + sources) (j :: acc)
        in
        Array.of_list (walk i []))
  in
  {
    Ddcr_params.time_m = 4;
    time_leaves = 1024;
    class_width = 8192;
    alpha = 8192;
    theta = 0;
    static_m = 4;
    static_leaves = q;
    static_indices;
    burst_bits = 0;
  }

let broken_params =
  ok_exn
    (Result.bind
       (Json.parse_file "fixtures/model_params_broken.json")
       Ddcr_params.of_json)

let fresh_engine ?(sources = 2) () =
  ok_exn
    (Engine.create ~phy ~num_sources:sources ~params:(good_params ~sources))

let flow ?(id = "f0") ?(source = 0) ?(bits = 4000) ?(deadline = 800_000)
    ?(burst = 1) ?(window = 400_000) ?(offset = 0) () =
  {
    Request.fl_id = id;
    fl_source = source;
    fl_bits = bits;
    fl_deadline = deadline;
    fl_burst = burst;
    fl_window = window;
    fl_offset = offset;
  }

let churn ?(seed = 3) ?(index = 0) ?(sources = 2) ?(pool = 8) n =
  Generator.sample_churn ~seed ~index ~sources ~pool ~requests:n

let code d = Engine.decision_code d

(* -------------------- engine semantics -------------------- *)

let test_engine_rejections () =
  let eng = fresh_engine () in
  Alcotest.(check string)
    "bad source" "invalid-params"
    (code (Engine.decide eng (Request.Add (flow ~source:7 ()))));
  Alcotest.(check string)
    "bad bits" "invalid-params"
    (code (Engine.decide eng (Request.Add (flow ~bits:0 ()))));
  Alcotest.(check string)
    "remove unknown" "unknown-flow"
    (code (Engine.decide eng (Request.Remove "ghost")));
  Alcotest.(check string)
    "modify unknown" "unknown-flow"
    (code (Engine.decide eng (Request.Modify (flow ()))));
  Alcotest.(check string)
    "first add" "accepted"
    (code (Engine.decide eng (Request.Add (flow ()))));
  Alcotest.(check string)
    "duplicate add" "duplicate-flow"
    (code (Engine.decide eng (Request.Add (flow ~deadline:900_000 ()))));
  Alcotest.(check int) "still one flow" 1 (Engine.size eng);
  Alcotest.(check string)
    "remove" "accepted"
    (code (Engine.decide eng (Request.Remove "f0")));
  Alcotest.(check string)
    "re-add after remove" "accepted"
    (code (Engine.decide eng (Request.Add (flow ()))))

let test_engine_atomic_modify () =
  let eng = fresh_engine () in
  let original = flow ~deadline:800_000 () in
  ignore (Engine.decide eng (Request.Add original));
  (* A modify whose parameters cannot fit (absurd rate) must bounce and
     leave the original admitted with its original class id. *)
  let absurd = flow ~deadline:100 ~window:100 ~bits:100_000 ~burst:64 () in
  (match Engine.decide eng (Request.Modify absurd) with
  | Engine.Rejected (Engine.Infeasible _) -> ()
  | d -> Alcotest.failf "expected infeasible, got %s" (code d));
  (match Engine.flows eng with
  | [ (f, _) ] ->
    Alcotest.(check int) "original deadline" 800_000 f.Request.fl_deadline
  | l -> Alcotest.failf "expected 1 flow, got %d" (List.length l));
  ignore (ok_exn (Engine.selfcheck eng))

let test_engine_never_raises () =
  let eng = fresh_engine () in
  List.iter
    (fun r -> ignore (Engine.decide eng r))
    (churn 500 ~pool:6);
  ignore (ok_exn (Engine.selfcheck eng))

(* -------------------- differential equivalence -------------------- *)

(* The tentpole invariant: the incremental decision and the from-scratch
   one agree on EVERY request of a churn stream — structurally equal
   decisions, float bit for float bit — and the per-decision sampled
   self-check (a third, Feasibility-based path) agrees too. *)
let test_differential_churn () =
  let inc = fresh_engine () in
  let full = fresh_engine () in
  List.iteri
    (fun i req ->
      let a = Engine.decide inc req in
      let b = Engine.decide_full full req in
      if a <> b then
        Alcotest.failf "decision %d diverged: %s vs %s" i
          (Json.to_string (Engine.decision_to_json a))
          (Json.to_string (Engine.decision_to_json b));
      if i mod 17 = 0 then ignore (ok_exn (Engine.selfcheck inc)))
    (churn 400);
  ignore (ok_exn (Engine.selfcheck inc))

let test_differential_broken_params () =
  (* The broken (horizon-starved) parameters are still internally
     consistent for the analysis: incremental == from-scratch there
     too.  The bug they plant is accept-then-violate, not a cache
     divergence. *)
  let mk () =
    ok_exn (Engine.create ~phy ~num_sources:2 ~params:broken_params)
  in
  let inc = mk () and full = mk () in
  List.iter
    (fun req ->
      Alcotest.(check bool)
        "same decision" true
        (Engine.decide inc req = Engine.decide_full full req))
    (churn 200 ~seed:9);
  ignore (ok_exn (Engine.selfcheck inc))

(* -------------------- snapshots -------------------- *)

let test_snapshot_roundtrip () =
  let eng = fresh_engine () in
  let reqs = churn 120 in
  List.iter (fun r -> ignore (Engine.decide eng r)) reqs;
  let restored =
    ok_exn
      (Engine.restore ~phy ~num_sources:2 ~params:(good_params ~sources:2)
         (Engine.snapshot eng))
  in
  ignore (ok_exn (Engine.selfcheck restored));
  Alcotest.(check bool)
    "same flows" true
    (Engine.flows eng = Engine.flows restored);
  (* The restored engine must keep deciding identically. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "post-restore decision" true
        (Engine.decide eng r = Engine.decide restored r))
    (churn 80 ~seed:5)

(* -------------------- journal -------------------- *)

let temp_journal () = Filename.temp_file "admit_journal" ".wal"

let decide_all eng reqs =
  List.mapi
    (fun i req ->
      {
        Journal.jr_seq = i;
        jr_request = req;
        jr_decision = Engine.decide eng req;
      })
    reqs

let test_journal_roundtrip () =
  let path = temp_journal () in
  let records = decide_all (fresh_engine ()) (churn 50) in
  let w = ok_exn (Journal.create ~path ~trace_hash:"h1") in
  List.iter (Journal.append w) records;
  Journal.close w;
  let loaded = ok_exn (Journal.load ~path ~trace_hash:"h1") in
  Alcotest.(check bool) "no tear" false loaded.Journal.lo_torn;
  Alcotest.(check bool) "records" true (loaded.Journal.lo_records = records);
  (match Journal.load ~path ~trace_hash:"other" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "journal accepted under a different trace");
  Sys.remove path

let test_journal_torn_tail () =
  let path = temp_journal () in
  let records = decide_all (fresh_engine ()) (churn 20) in
  let keep, torn =
    match List.rev records with
    | last :: rest -> (List.rev rest, last)
    | [] -> assert false
  in
  let w = ok_exn (Journal.create ~path ~trace_hash:"h1") in
  List.iter (Journal.append w) keep;
  Journal.append_torn w torn;
  Journal.close w;
  let loaded = ok_exn (Journal.load ~path ~trace_hash:"h1") in
  Alcotest.(check bool) "tear detected" true loaded.Journal.lo_torn;
  Alcotest.(check int)
    "records before the tear" (List.length keep)
    (List.length loaded.Journal.lo_records);
  (* open_append truncates the tear and appending the lost record
     completes the journal. *)
  let w =
    ok_exn
      (Journal.open_append ~path ~valid_bytes:loaded.Journal.lo_valid_bytes)
  in
  Journal.append w torn;
  Journal.close w;
  let healed = ok_exn (Journal.load ~path ~trace_hash:"h1") in
  Alcotest.(check bool) "healed" true (healed.Journal.lo_records = records);
  Alcotest.(check bool) "no tear left" false healed.Journal.lo_torn;
  Sys.remove path

(* The crash-recovery property: truncate the journal at EVERY byte
   length; the intact prefix always loads (torn tail dropped, never an
   error), and resuming — replaying the prefix through Engine.apply and
   re-deciding the rest — reproduces the uninterrupted decision
   sequence exactly. *)
let test_journal_prefix_truncation () =
  let reqs = churn 30 ~seed:13 in
  let golden = decide_all (fresh_engine ()) reqs in
  let golden_lines = List.map Journal.record_line golden in
  let path = temp_journal () in
  let w = ok_exn (Journal.create ~path ~trace_hash:"h1") in
  List.iter (Journal.append w) golden;
  Journal.close w;
  let bytes =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  in
  let cut = Filename.temp_file "admit_cut" ".wal" in
  let total = String.length bytes in
  for len = 0 to total do
    let oc = open_out_bin cut in
    output_string oc (String.sub bytes 0 len);
    close_out oc;
    match Journal.load ~path:cut ~trace_hash:"h1" with
    | Error e -> Alcotest.failf "truncation at %d/%d: %s" len total e
    | Ok loaded ->
      let k = List.length loaded.Journal.lo_records in
      let eng = fresh_engine () in
      List.iter
        (fun r ->
          ignore
            (ok_exn (Engine.apply eng r.Journal.jr_request r.Journal.jr_decision)))
        loaded.Journal.lo_records;
      let resumed =
        List.map Journal.record_line loaded.Journal.lo_records
        @ List.mapi
            (fun i req ->
              Journal.record_line
                {
                  Journal.jr_seq = k + i;
                  jr_request = req;
                  jr_decision = Engine.decide eng req;
                })
            (List.filteri (fun i _ -> i >= k) reqs)
      in
      if resumed <> golden_lines then
        Alcotest.failf "truncation at %d/%d: resumed log diverged (%d replayed)"
          len total k
  done;
  Sys.remove cut;
  Sys.remove path

let test_snapshot_file_roundtrip () =
  let path = temp_journal () in
  let eng = fresh_engine () in
  List.iter (fun r -> ignore (Engine.decide eng r)) (churn 60);
  ok_exn
    (Journal.save_snapshot ~path ~trace_hash:"h1" ~seq:60 (Engine.snapshot eng));
  (match Journal.load_snapshot ~path ~trace_hash:"h1" with
  | None -> Alcotest.fail "snapshot did not load"
  | Some (seq, state) ->
    Alcotest.(check int) "seq" 60 seq;
    let restored =
      ok_exn
        (Engine.restore ~phy ~num_sources:2 ~params:(good_params ~sources:2)
           state)
    in
    Alcotest.(check bool)
      "same flows" true
      (Engine.flows eng = Engine.flows restored));
  Alcotest.(check bool)
    "stale hash ignored" true
    (Journal.load_snapshot ~path ~trace_hash:"other" = None);
  (* A torn snapshot degrades to None, never an error. *)
  let sp = Journal.snapshot_path path in
  let ic = open_in_bin sp in
  let half = in_channel_length ic / 2 in
  let prefix = really_input_string ic half in
  close_in ic;
  let oc = open_out_bin sp in
  output_string oc prefix;
  close_out oc;
  Alcotest.(check bool)
    "torn snapshot ignored" true
    (Journal.load_snapshot ~path ~trace_hash:"h1" = None);
  Sys.remove sp;
  Sys.remove path

(* -------------------- service -------------------- *)

let service_log reqs config =
  let eng = fresh_engine () in
  let records = ref [] in
  let summary =
    Service.run
      ~journal:(fun r -> records := r :: !records)
      config eng ~start:0 reqs
  in
  (summary, List.rev !records, eng)

let test_service_summary () =
  let reqs = churn 200 in
  let summary, records, eng =
    service_log reqs { Service.default with Service.sv_paranoid = true }
  in
  Alcotest.(check int) "processed" 200 summary.Service.sm_processed;
  Alcotest.(check int) "journaled" 200 (List.length records);
  Alcotest.(check int) "selfchecks" 200 summary.Service.sm_selfchecks;
  Alcotest.(check bool) "no mismatch" true (summary.Service.sm_mismatch = None);
  Alcotest.(check int) "flows" (Engine.size eng) summary.Service.sm_flows;
  let rejected = List.fold_left (fun a (_, n) -> a + n) 0 summary.Service.sm_rejected in
  Alcotest.(check int)
    "accepted + rejected = processed" 200
    (summary.Service.sm_accepted + rejected)

let test_service_overload () =
  (* One chunk of 40 against capacity 10 / high 20 / low 5: the chunk
     size 40 >= high 20 engages degraded mode from position 0, shedding
     Add/Modify (a Remove still runs) while the backlog stays above
     low 5; positions >= capacity 10 shed everything outright.  The
     whole pattern is a pure function of the absolute index. *)
  let reqs = churn 40 ~seed:21 in
  let config =
    {
      Service.sv_chunk = 40;
      sv_capacity = 10;
      sv_high = 20;
      sv_low = 5;
      sv_selfcheck_every = 0;
      sv_paranoid = false;
      sv_snapshot_every = 0;
    }
  in
  let summary, golden, _ = service_log reqs config in
  Alcotest.(check int) "one degraded window" 1 summary.Service.sm_degraded;
  Alcotest.(check int) "restored" 1 summary.Service.sm_restored;
  let overloaded =
    try List.assoc "overloaded" summary.Service.sm_rejected with Not_found -> 0
  in
  Alcotest.(check bool) "sheds happened" true (overloaded > 0);
  (* Only Removes survive inside the degraded head of the chunk. *)
  List.iter
    (fun r ->
      match (r.Journal.jr_request, r.Journal.jr_decision) with
      | (Request.Add _ | Request.Modify _), d
        when Engine.decision_code d <> "overloaded" ->
        Alcotest.failf "request %d: add/modify survived the degraded chunk"
          r.Journal.jr_seq
      | _ -> ())
    golden;
  (* Resume determinism incl. the shed pattern: replay the journaled
     prefix through Engine.apply (exactly what [--resume] does), then
     let the service decide the tail — the journal tail must be
     byte-identical from any split point. *)
  let golden_lines = List.map Journal.record_line golden in
  List.iter
    (fun split ->
      let eng = fresh_engine () in
      List.iteri
        (fun i r ->
          if i < split then
            ignore
              (ok_exn
                 (Engine.apply eng r.Journal.jr_request r.Journal.jr_decision)))
        golden;
      let tail = List.filteri (fun i _ -> i >= split) reqs in
      let lines = ref [] in
      let journal r = lines := Journal.record_line r :: !lines in
      ignore (Service.run ~journal config eng ~start:split tail);
      Alcotest.(check bool)
        (Printf.sprintf "split at %d" split)
        true
        (List.rev !lines
        = List.filteri (fun i _ -> i >= split) golden_lines))
    [ 3; 10; 25; 36 ]

let test_service_churn_stress () =
  (* The stress gate: a long sampled stream drains with zero
     differential divergence and bounded state. *)
  let reqs = churn 20_000 ~pool:16 in
  let config =
    { Service.default with Service.sv_selfcheck_every = 1000 }
  in
  let eng = fresh_engine () in
  let summary = Service.run config eng ~start:0 reqs in
  Alcotest.(check int) "processed" 20_000 summary.Service.sm_processed;
  Alcotest.(check bool) "no mismatch" true (summary.Service.sm_mismatch = None);
  Alcotest.(check int) "selfchecks" 20 summary.Service.sm_selfchecks;
  Alcotest.(check bool) "resident set bounded" true (Engine.size eng <= 16);
  ignore (ok_exn (Engine.selfcheck eng))

(* -------------------- lint rules -------------------- *)

let trace_of requests =
  {
    Request.tr_phy = phy;
    tr_sources = 2;
    tr_params = good_params ~sources:2;
    tr_requests = requests;
  }

let test_lint_clean () =
  let diags =
    Config_lint.check_admit
      (trace_of [ Request.Add (flow ()); Request.Remove "f0" ])
  in
  Alcotest.(check bool) "no errors" false (Diagnostic.has_errors diags);
  Alcotest.(check bool) "summary info present" true (diags <> [])

let test_lint_duplicate_add () =
  let diags =
    Config_lint.check_admit
      (trace_of [ Request.Add (flow ()); Request.Add (flow ~deadline:900_000 ()) ])
  in
  Alcotest.(check bool) "errors" true (Diagnostic.has_errors diags);
  Alcotest.(check bool)
    "CFG-ADMIT-DUP fired" true
    (List.exists (fun d -> d.Diagnostic.rule_id = "CFG-ADMIT-DUP") diags)

let test_lint_headroom_warning () =
  (* The committed smoke fixture (same sample as ddcr_admit gen
     --seed 1) drives the binding class within one frame of B_DDCR a
     few times. *)
  let trace = ok_exn (Request.load_trace ~path:"fixtures/admit_churn_smoke.json") in
  let diags = Config_lint.check_admit trace in
  Alcotest.(check bool)
    "CFG-ADMIT-HEADROOM fired" true
    (List.exists (fun d -> d.Diagnostic.rule_id = "CFG-ADMIT-HEADROOM") diags)

(* -------------------- chaos closure -------------------- *)

let test_sample_churn_deterministic () =
  let a = churn 64 ~seed:7 and b = churn 64 ~seed:7 in
  Alcotest.(check bool) "same seed same stream" true (a = b);
  Alcotest.(check bool)
    "different index different stream" true
    (churn 64 ~seed:7 <> churn 64 ~seed:7 ~index:1);
  Alcotest.(check int) "length" 64 (List.length a)

let admit_config =
  {
    Candidate.an_phy = "gigabit-ethernet";
    an_sources = 2;
    an_params = broken_params;
    an_horizon_ms = 10;
  }

let violating_candidate () =
  (* Candidate 0 of the seeded search: known to accept-then-violate
     under the horizon-starved parameters (asserted below, and frozen
     into fixtures/admit_chaos_repro_min.json). *)
  {
    Candidate.ar_requests = churn 64 ~seed:7 ~pool:8;
    ar_trace_seed = Rtnet_util.Prng.derive (Rtnet_util.Prng.derive 7 1) 0;
  }

let test_run_admit_violation () =
  let report = Candidate.run_admit admit_config (violating_candidate ()) in
  (match report.Candidate.rp_verdict with
  | Oracle.Admission_violation { misses; _ } ->
    Alcotest.(check bool) "misses counted" true (misses > 0)
  | v -> Alcotest.failf "expected admission violation, got %s" (Oracle.label v));
  let again = Candidate.run_admit admit_config (violating_candidate ()) in
  Alcotest.(check string)
    "fingerprint stable" report.Candidate.rp_fingerprint
    again.Candidate.rp_fingerprint

let test_run_admit_good_params_pass () =
  let config = { admit_config with Candidate.an_params = good_params ~sources:2 } in
  let report = Candidate.run_admit config (violating_candidate ()) in
  Alcotest.(check string)
    "sound params pass" "pass"
    (Oracle.label report.Candidate.rp_verdict)

let test_shrink_preserves_class () =
  let cd = violating_candidate () in
  let target = (Candidate.run_admit admit_config cd).Candidate.rp_verdict in
  let oracle reqs =
    (Candidate.run_admit admit_config { cd with Candidate.ar_requests = reqs })
      .Candidate.rp_verdict
  in
  let res = Shrink.run_admit ~oracle ~target cd.Candidate.ar_requests in
  Alcotest.(check bool)
    "verdict class preserved" true
    (Oracle.same_class res.Shrink.sa_verdict target);
  Alcotest.(check bool)
    "no longer than original" true
    (List.length res.Shrink.sa_requests
    <= List.length cd.Candidate.ar_requests);
  Alcotest.(check bool) "did some checks" true (res.Shrink.sa_checks > 0)

let test_repro_roundtrip () =
  let cd = violating_candidate () in
  let report = Candidate.run_admit admit_config cd in
  let repro =
    Repro.make_admission ~config:admit_config ~candidate:cd ~report
      ~note:"unit test"
  in
  let decoded = ok_exn (Repro.admission_of_json (Repro.admission_to_json repro)) in
  Alcotest.(check bool) "roundtrip" true (decoded = repro);
  let replay = Repro.replay_admission repro in
  Alcotest.(check bool) "verdict reproduces" true replay.Repro.rr_verdict_ok;
  Alcotest.(check bool)
    "fingerprint reproduces" true replay.Repro.rr_fingerprint_ok;
  (* Tampering with the verdict must be caught by replay. *)
  let tampered = { repro with Repro.ra_verdict = Oracle.Pass } in
  Alcotest.(check bool)
    "tampered verdict drifts" false
    (Repro.replay_admission tampered).Repro.rr_verdict_ok

let test_repro_load_any_dispatch () =
  let path = Filename.temp_file "admit_repro" ".json" in
  let cd = violating_candidate () in
  let report = Candidate.run_admit admit_config cd in
  Repro.save_admission ~path
    (Repro.make_admission ~config:admit_config ~candidate:cd ~report
       ~note:"dispatch test");
  (match Repro.load_any ~path with
  | Ok (Repro.Admission _) -> ()
  | Ok _ -> Alcotest.fail "dispatched to the wrong artifact kind"
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_oracle_verdict_roundtrip () =
  let v = Oracle.Admission_violation { flow = "f3"; misses = 7 } in
  Alcotest.(check bool)
    "roundtrip" true
    (ok_exn (Oracle.of_json (Oracle.to_json v)) = v);
  Alcotest.(check string) "label" "admission-violation" (Oracle.label v)

let suite =
  [
    ( "admit",
      [
        Alcotest.test_case "engine rejection semantics" `Quick
          test_engine_rejections;
        Alcotest.test_case "modify is atomic" `Quick test_engine_atomic_modify;
        Alcotest.test_case "malformed churn never raises" `Quick
          test_engine_never_raises;
        Alcotest.test_case "incremental == from-scratch on churn" `Quick
          test_differential_churn;
        Alcotest.test_case "differential holds under broken params" `Quick
          test_differential_broken_params;
        Alcotest.test_case "engine snapshot roundtrip" `Quick
          test_snapshot_roundtrip;
        Alcotest.test_case "journal roundtrip + trace hash" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "journal torn tail heals" `Quick
          test_journal_torn_tail;
        Alcotest.test_case "resume from every byte-truncation" `Slow
          test_journal_prefix_truncation;
        Alcotest.test_case "snapshot file roundtrip" `Quick
          test_snapshot_file_roundtrip;
        Alcotest.test_case "service summary accounting" `Quick
          test_service_summary;
        Alcotest.test_case "service overload watermarks deterministic" `Quick
          test_service_overload;
        Alcotest.test_case "service 20k churn stress" `Slow
          test_service_churn_stress;
        Alcotest.test_case "lint: clean trace" `Quick test_lint_clean;
        Alcotest.test_case "lint: duplicate add is an error" `Quick
          test_lint_duplicate_add;
        Alcotest.test_case "lint: headroom warning on smoke fixture" `Quick
          test_lint_headroom_warning;
        Alcotest.test_case "sample_churn deterministic" `Quick
          test_sample_churn_deterministic;
        Alcotest.test_case "run_admit finds the planted violation" `Quick
          test_run_admit_violation;
        Alcotest.test_case "run_admit passes under sound params" `Quick
          test_run_admit_good_params_pass;
        Alcotest.test_case "shrink preserves the verdict class" `Quick
          test_shrink_preserves_class;
        Alcotest.test_case "admission repro roundtrip + replay" `Quick
          test_repro_roundtrip;
        Alcotest.test_case "load_any dispatches admission artifacts" `Quick
          test_repro_load_any_dispatch;
        Alcotest.test_case "oracle admission verdict roundtrip" `Quick
          test_oracle_verdict_roundtrip;
      ] );
  ]
