module Int_math = Rtnet_util.Int_math

let check = Alcotest.(check int)

let test_pow () =
  check "2^0" 1 (Int_math.pow 2 0);
  check "2^10" 1024 (Int_math.pow 2 10);
  check "3^4" 81 (Int_math.pow 3 4);
  check "7^1" 7 (Int_math.pow 7 1);
  check "1^100" 1 (Int_math.pow 1 100);
  check "0^0" 1 (Int_math.pow 0 0);
  check "0^5" 0 (Int_math.pow 0 5);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Int_math.pow: negative exponent") (fun () ->
      ignore (Int_math.pow 2 (-1)))

let test_pow_overflow () =
  Alcotest.check_raises "overflow" (Invalid_argument "Int_math.pow: overflow")
    (fun () -> ignore (Int_math.pow 2 63))

let test_is_power_of () =
  Alcotest.(check bool) "1 is 2^0" true (Int_math.is_power_of 2 1);
  Alcotest.(check bool) "64 = 2^6" true (Int_math.is_power_of 2 64);
  Alcotest.(check bool) "64 = 4^3" true (Int_math.is_power_of 4 64);
  Alcotest.(check bool) "64 not power of 3" false (Int_math.is_power_of 3 64);
  Alcotest.(check bool) "0 is not" false (Int_math.is_power_of 2 0);
  Alcotest.(check bool) "-8 is not" false (Int_math.is_power_of 2 (-8));
  Alcotest.(check bool) "12 not power of 2" false (Int_math.is_power_of 2 12)

let test_log_floor () =
  check "log2 1" 0 (Int_math.log_floor 2 1);
  check "log2 2" 1 (Int_math.log_floor 2 2);
  check "log2 63" 5 (Int_math.log_floor 2 63);
  check "log2 64" 6 (Int_math.log_floor 2 64);
  check "log3 80" 3 (Int_math.log_floor 3 80);
  check "log3 81" 4 (Int_math.log_floor 3 81);
  check "log10 999" 2 (Int_math.log_floor 10 999)

let test_log_ceil () =
  check "clog2 1" 0 (Int_math.log_ceil 2 1);
  check "clog2 3" 2 (Int_math.log_ceil 2 3);
  check "clog2 4" 2 (Int_math.log_ceil 2 4);
  check "clog2 5" 3 (Int_math.log_ceil 2 5);
  check "clog4 64" 3 (Int_math.log_ceil 4 64);
  check "clog4 65" 4 (Int_math.log_ceil 4 65)

let test_divisions () =
  check "cdiv 7 2" 4 (Int_math.cdiv 7 2);
  check "cdiv 8 2" 4 (Int_math.cdiv 8 2);
  check "cdiv 0 5" 0 (Int_math.cdiv 0 5);
  check "cdiv -1 2" 0 (Int_math.cdiv (-1) 2);
  check "cdiv -4 2" (-2) (Int_math.cdiv (-4) 2);
  check "fdiv 7 2" 3 (Int_math.fdiv 7 2);
  check "fdiv -1 2" (-1) (Int_math.fdiv (-1) 2);
  check "fdiv -4 2" (-2) (Int_math.fdiv (-4) 2);
  check "fdiv -5 3" (-2) (Int_math.fdiv (-5) 3)

let test_isqrt () =
  check "isqrt 0" 0 (Int_math.isqrt 0);
  check "isqrt 1" 1 (Int_math.isqrt 1);
  check "isqrt 15" 3 (Int_math.isqrt 15);
  check "isqrt 16" 4 (Int_math.isqrt 16);
  check "isqrt big" 1_000_000 (Int_math.isqrt 1_000_000_000_000)

(* Properties *)

let prop_pow_log =
  QCheck.Test.make ~name:"log_floor inverts pow" ~count:500
    QCheck.(pair (int_range 2 10) (int_range 0 15))
    (fun (m, e) ->
      QCheck.assume (e * Int_math.log_ceil 2 m < 60);
      Int_math.log_floor m (Int_math.pow m e) = e)

let prop_log_floor_bounds =
  QCheck.Test.make ~name:"m^⌊log⌋ <= v < m^(⌊log⌋+1)" ~count:1000
    QCheck.(pair (int_range 2 10) (int_range 1 1_000_000))
    (fun (m, v) ->
      let e = Int_math.log_floor m v in
      Int_math.pow m e <= v && v < Int_math.pow m (e + 1))

let prop_divisions =
  QCheck.Test.make ~name:"cdiv/fdiv vs float" ~count:1000
    QCheck.(pair (int_range (-100000) 100000) (int_range 1 1000))
    (fun (a, b) ->
      let fa = float_of_int a and fb = float_of_int b in
      Int_math.cdiv a b = int_of_float (ceil (fa /. fb))
      && Int_math.fdiv a b = int_of_float (floor (fa /. fb)))

let prop_isqrt =
  QCheck.Test.make ~name:"isqrt bounds" ~count:1000
    QCheck.(int_range 0 1_000_000_000)
    (fun v ->
      let r = Int_math.isqrt v in
      r * r <= v && (r + 1) * (r + 1) > v)

let suite =
  [
    ( "int_math",
      [
        Alcotest.test_case "pow" `Quick test_pow;
        Alcotest.test_case "pow overflow" `Quick test_pow_overflow;
        Alcotest.test_case "is_power_of" `Quick test_is_power_of;
        Alcotest.test_case "log_floor" `Quick test_log_floor;
        Alcotest.test_case "log_ceil" `Quick test_log_ceil;
        Alcotest.test_case "cdiv/fdiv" `Quick test_divisions;
        Alcotest.test_case "isqrt" `Quick test_isqrt;
        QCheck_alcotest.to_alcotest prop_pow_log;
        QCheck_alcotest.to_alcotest prop_log_floor_bounds;
        QCheck_alcotest.to_alcotest prop_divisions;
        QCheck_alcotest.to_alcotest prop_isqrt;
      ] );
  ]
