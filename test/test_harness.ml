module Harness = Rtnet_mac.Harness
module Channel = Rtnet_channel.Channel
module Phy = Rtnet_channel.Phy
module Fault_plan = Rtnet_channel.Fault_plan
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run

let phy = Phy.classic_ethernet

let cls src =
  {
    Message.cls_id = src;
    cls_name = "c" ^ string_of_int src;
    cls_source = src;
    cls_bits = 1000;
    cls_deadline = 50_000;
    cls_burst = 1;
    cls_window = 50_000;
  }

let msg uid src arrival = { Message.uid; cls = cls src; arrival }

(* The simplest protocol: everyone with a message attempts every slot. *)
let aloha_decide services ~now:_ =
  List.filter_map
    (fun src ->
      Option.map
        (fun m ->
          {
            Channel.att_source = src;
            att_tag = m.Message.uid;
            att_bits = m.Message.cls.Message.cls_bits;
            att_key = (0, src);
          })
        (services.Harness.peek src))
    [ 0; 1 ]

let passthrough_after _services ~now:_ ~resolution:_ ~next_free = next_free

let test_single_source_drains () =
  let trace = [ msg 0 0 0; msg 1 0 0; msg 2 0 5_000 ] in
  let o =
    Harness.run ~protocol:"test-aloha" ~phy ~num_sources:2 ~horizon:50_000
      ~decide:aloha_decide ~after:passthrough_after trace
  in
  Alcotest.(check string) "label" "test-aloha" o.Run.protocol;
  Alcotest.(check int) "all delivered" 3 (List.length o.Run.completions);
  Alcotest.(check int) "nothing pending" 0 (List.length o.Run.unfinished);
  (* Frames are back-to-back: 1-persistent sender, 1160-bit frames. *)
  match o.Run.completions with
  | [ a; b; _ ] ->
    Alcotest.(check int) "first at 0" 0 a.Run.c_start;
    Alcotest.(check int) "second immediately after" 1160 b.Run.c_start
  | _ -> Alcotest.fail "expected three completions"

let test_two_sources_livelock_without_backoff () =
  (* Both sources always attempt: every slot collides, nothing is ever
     delivered — and the harness reports it all as unfinished. *)
  let trace = [ msg 0 0 0; msg 1 1 0 ] in
  let o =
    Harness.run ~protocol:"test-aloha" ~phy ~num_sources:2 ~horizon:20_000
      ~decide:aloha_decide ~after:passthrough_after trace
  in
  Alcotest.(check int) "nothing delivered" 0 (List.length o.Run.completions);
  Alcotest.(check int) "both unfinished" 2 (List.length o.Run.unfinished);
  match o.Run.channel with
  | Some st ->
    Alcotest.(check bool) "collisions all the way" true
      (st.Channel.collision_slots > 30)
  | None -> Alcotest.fail "expected stats"

let test_mismatch_detected () =
  (* A protocol that attempts a tag that is not the queue head. *)
  let bad_decide services ~now:_ =
    match services.Harness.peek 0 with
    | Some m ->
      [
        {
          Channel.att_source = 0;
          att_tag = m.Message.uid + 999;
          att_bits = 1000;
          att_key = (0, 0);
        };
      ]
    | None -> []
  in
  Alcotest.(check bool) "raises Mismatch" true
    (try
       ignore
         (Harness.run ~protocol:"bad" ~phy ~num_sources:1 ~horizon:10_000
            ~decide:bad_decide ~after:passthrough_after [ msg 0 0 0 ]);
       false
     with Harness.Mismatch _ -> true)

let test_mismatch_diagnostic_format () =
  (* The structured diagnostic carries slot, source and tag, and both
     the formatter and the installed Printexc printer render them. *)
  let m =
    {
      Harness.mm_slot = 4_640;
      mm_source = 2;
      mm_tag = 17;
      mm_reason = "queue head is uid 3";
    }
  in
  Alcotest.(check string) "message format"
    "slot at t=4640: source 2, tag 17: queue head is uid 3"
    (Harness.mismatch_message m);
  Alcotest.(check string) "printexc printer installed"
    ("Rtnet_mac.Harness.Mismatch: " ^ Harness.mismatch_message m)
    (Printexc.to_string (Harness.Mismatch m));
  (* And the harness raises with the offending coordinates filled in. *)
  let bad_decide services ~now:_ =
    match services.Harness.peek 0 with
    | Some m ->
      [
        {
          Channel.att_source = 0;
          att_tag = m.Message.uid + 999;
          att_bits = 1000;
          att_key = (0, 0);
        };
      ]
    | None -> []
  in
  match
    Harness.run ~protocol:"bad" ~phy ~num_sources:1 ~horizon:10_000
      ~decide:bad_decide ~after:passthrough_after [ msg 5 0 0 ]
  with
  | (_ : Rtnet_stats.Run.outcome) -> Alcotest.fail "expected Mismatch"
  | exception Harness.Mismatch m ->
    Alcotest.(check int) "source carried" 0 m.Harness.mm_source;
    Alcotest.(check int) "tag carried" (5 + 999) m.Harness.mm_tag

let test_drop_accounting () =
  (* A protocol that drops every message it sees instead of sending. *)
  let drop_decide services ~now:_ =
    (match services.Harness.pop 0 with
    | Some m -> services.Harness.drop m
    | None -> ());
    []
  in
  let trace = [ msg 0 0 0; msg 1 0 100 ] in
  let o =
    Harness.run ~protocol:"dropper" ~phy ~num_sources:1 ~horizon:10_000
      ~decide:drop_decide ~after:passthrough_after trace
  in
  Alcotest.(check int) "both dropped" 2 (List.length o.Run.dropped);
  Alcotest.(check int) "none delivered" 0 (List.length o.Run.completions);
  Alcotest.(check int) "all count as misses" 2
    (Run.metrics o).Run.deadline_misses

let test_arrivals_beyond_horizon_excluded () =
  let trace = [ msg 0 0 0; msg 1 0 999_999 ] in
  let o =
    Harness.run ~protocol:"test-aloha" ~phy ~num_sources:2 ~horizon:10_000
      ~decide:aloha_decide ~after:passthrough_after trace
  in
  Alcotest.(check int) "late arrival not reported" 1
    (List.length o.Run.completions + List.length o.Run.unfinished)

let test_after_may_extend_acquisition () =
  (* A bursting protocol: after each Tx it appends the next frame. *)
  let burst_after services ~now:_ ~resolution ~next_free =
    match resolution with
    | Channel.Tx { src; _ } -> (
      match services.Harness.pop src with
      | Some m ->
        let on_wire, free =
          Channel.burst services.Harness.channel ~src ~tag:m.Message.uid
            ~bits:m.Message.cls.Message.cls_bits
        in
        services.Harness.complete m ~start:(free - on_wire) ~finish:free;
        free
      | None -> next_free)
    | Channel.Idle | Channel.Garbled _ | Channel.Clash _ -> next_free
  in
  let trace = [ msg 0 0 0; msg 1 0 0 ] in
  let o =
    Harness.run ~protocol:"burster" ~phy ~num_sources:2 ~horizon:50_000
      ~decide:aloha_decide ~after:burst_after trace
  in
  Alcotest.(check int) "both delivered" 2 (List.length o.Run.completions);
  match o.Run.completions with
  | [ a; b ] ->
    Alcotest.(check int) "burst frame contiguous" a.Run.c_finish b.Run.c_start
  | _ -> Alcotest.fail "expected two completions"

let test_on_complete_sees_every_completion () =
  (* The federation ingest hook: called once per completion, in
     completion order, with the same (msg, start, finish) the outcome
     records. *)
  let seen = ref [] in
  let on_complete ~msg ~start ~finish =
    seen := (msg.Message.uid, start, finish) :: !seen
  in
  let trace = [ msg 0 0 0; msg 1 0 0; msg 2 0 5_000 ] in
  let o =
    Harness.run ~protocol:"test-aloha" ~on_complete ~phy ~num_sources:2
      ~horizon:50_000 ~decide:aloha_decide ~after:passthrough_after trace
  in
  Alcotest.(check (list (triple int int int)))
    "hook mirrors the outcome"
    (List.map
       (fun c -> (c.Run.c_msg.Message.uid, c.Run.c_start, c.Run.c_finish))
       o.Run.completions)
    (List.rev !seen)

let test_inject_merges_into_arrival_stream () =
  (* The federation inject hook: a message handed to the harness
     mid-run is EDF-queued at its arrival time and afterwards
     indistinguishable from a trace arrival. *)
  let injected = ref false in
  let inject ~now =
    if (not !injected) && now >= 10_000 then begin
      injected := true;
      [ msg 7 0 12_000 ]
    end
    else []
  in
  let trace = [ msg 0 0 0 ] in
  let o =
    Harness.run ~protocol:"test-aloha" ~inject ~phy ~num_sources:2
      ~horizon:50_000 ~decide:aloha_decide ~after:passthrough_after trace
  in
  Alcotest.(check int) "trace + injected delivered" 2
    (List.length o.Run.completions);
  match
    List.find_opt (fun c -> c.Run.c_msg.Message.uid = 7) o.Run.completions
  with
  | Some c ->
    Alcotest.(check bool) "served no earlier than its arrival" true
      (c.Run.c_start >= 12_000)
  | None -> Alcotest.fail "injected message not completed"

let test_inject_pending_counts_unfinished () =
  (* An injected message the protocol never manages to serve must be
     accounted exactly like a stranded trace arrival.  Two always-
     attempting aloha sources livelock, so both messages stay pending. *)
  let injected = ref false in
  let inject ~now:_ =
    if !injected then []
    else begin
      injected := true;
      [ msg 9 1 0 ]
    end
  in
  let o =
    Harness.run ~protocol:"test-aloha" ~inject ~phy ~num_sources:2
      ~horizon:20_000 ~decide:aloha_decide ~after:passthrough_after
      [ msg 0 0 0 ]
  in
  Alcotest.(check int) "nothing delivered" 0 (List.length o.Run.completions);
  Alcotest.(check int) "trace + injected pending" 2
    (List.length o.Run.unfinished)

let test_inject_while_all_crashed_accounted () =
  (* A federation hand-off arriving while every station of the segment
     is crashed must be queued and served after revival (or reported
     pending) — never silently lost.  Both stations are down during
     [0, 15000); the injected message arrives at 5000. *)
  let plan =
    Fault_plan.create ~seed:3
      (Fault_plan.merge
         [
           Fault_plan.crash ~source:0 ~from_:0 ~until:15_000;
           Fault_plan.crash ~source:1 ~from_:0 ~until:15_000;
         ])
  in
  let injected = ref false in
  let inject ~now =
    if (not !injected) && now >= 2_000 then begin
      injected := true;
      [ msg 7 0 5_000 ]
    end
    else []
  in
  let o =
    Harness.run ~protocol:"test-aloha" ~plan ~inject ~phy ~num_sources:2
      ~horizon:80_000 ~decide:aloha_decide ~after:passthrough_after []
  in
  (match
     List.find_opt (fun c -> c.Run.c_msg.Message.uid = 7) o.Run.completions
   with
  | Some c ->
    Alcotest.(check bool) "served only after the outage" true
      (c.Run.c_start >= 15_000)
  | None ->
    Alcotest.(check bool) "undelivered hand-off reported pending" true
      (List.exists (fun m -> m.Message.uid = 7) o.Run.unfinished));
  match o.Run.faults with
  | Some f ->
    Alcotest.(check int) "both outages on the record" 2
      (List.length
         (List.filter (fun sf -> sf.Run.sf_crashed_slots > 0) f.Run.f_per_source))
  | None -> Alcotest.fail "fault accounting missing under a plan"

let test_inject_unknown_source_rejected () =
  (* A malformed hand-off — a message whose class names a station the
     segment does not have — must be a structured failure, not an
     out-of-bounds write. *)
  let inject ~now = if now = 0 then [ msg 9 5 0 ] else [] in
  match
    Harness.run ~protocol:"test-aloha" ~inject ~phy ~num_sources:2
      ~horizon:10_000 ~decide:aloha_decide ~after:passthrough_after []
  with
  | exception Failure e ->
    Alcotest.(check bool) "diagnostic names the unknown source" true
      (Astring_contains.contains e "unknown source 5")
  | _ -> Alcotest.fail "expected a structured failure"

let suite =
  [
    ( "mac_harness",
      [
        Alcotest.test_case "single source drains" `Quick test_single_source_drains;
        Alcotest.test_case "livelock reported" `Quick
          test_two_sources_livelock_without_backoff;
        Alcotest.test_case "mismatch detected" `Quick test_mismatch_detected;
        Alcotest.test_case "mismatch diagnostic format" `Quick
          test_mismatch_diagnostic_format;
        Alcotest.test_case "drop accounting" `Quick test_drop_accounting;
        Alcotest.test_case "horizon exclusion" `Quick
          test_arrivals_beyond_horizon_excluded;
        Alcotest.test_case "burst extension" `Quick
          test_after_may_extend_acquisition;
        Alcotest.test_case "on_complete hook" `Quick
          test_on_complete_sees_every_completion;
        Alcotest.test_case "inject hook" `Quick
          test_inject_merges_into_arrival_stream;
        Alcotest.test_case "inject pending unfinished" `Quick
          test_inject_pending_counts_unfinished;
        Alcotest.test_case "inject while all crashed" `Quick
          test_inject_while_all_crashed_accounted;
        Alcotest.test_case "inject unknown source" `Quick
          test_inject_unknown_source_rejected;
      ] );
  ]
