module Xi = Rtnet_core.Xi
module Multi_tree = Rtnet_core.Multi_tree

let test_single_tree_reduces_to_tilde () =
  (* v = 1: the bound is just ξ̃_u^t. *)
  List.iter
    (fun (m, t) ->
      for u = 2 to t do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "v=1 m=%d t=%d u=%d" m t u)
          (Xi.tilde ~m ~t (float_of_int u))
          (Multi_tree.bound ~m ~t ~u ~v:1)
      done)
    [ (2, 8); (4, 16) ]

let test_eq18_identity () =
  (* v·ξ̃_{u/v}^t = ξ̃_u^{tv} − (v−1)/(m−1). *)
  List.iter
    (fun (m, t, v) ->
      for u = 2 * v to t * v do
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "eq18 m=%d t=%d u=%d v=%d" m t u v)
          (Multi_tree.bound ~m ~t ~u ~v)
          (Multi_tree.bound_eq19 ~m ~t ~u ~v)
      done)
    [ (2, 8, 2); (2, 8, 5); (3, 9, 3); (4, 16, 2); (4, 64, 4) ]

let test_bound_dominates_exhaustive () =
  (* Eq. 19: the analytic bound dominates the exact optimisation. *)
  List.iter
    (fun (m, t, v) ->
      for u = 2 * v to t * v do
        let exact = Multi_tree.worst_exact ~m ~t ~u ~v in
        let bound = Multi_tree.bound ~m ~t ~u ~v in
        Alcotest.(check bool)
          (Printf.sprintf "eq19 m=%d t=%d u=%d v=%d (%d <= %.3f)" m t u v exact
             bound)
          true
          (float_of_int exact <= bound +. 1e-9)
      done)
    [ (2, 4, 2); (2, 8, 3); (2, 16, 2); (3, 9, 4); (4, 16, 2); (4, 16, 3) ]

let test_bound_tight_at_anchor () =
  (* When u/v hits an anchor 2m^i on every tree, the equal split is
     realisable exactly, so bound and exhaustive coincide. *)
  let m = 2 and t = 8 and v = 3 in
  let u = 3 * 4 (* per-tree share 4 = 2·2^1 *) in
  let exact = Multi_tree.worst_exact ~m ~t ~u ~v in
  let bound = Multi_tree.bound ~m ~t ~u ~v in
  Alcotest.(check (float 1e-6)) "tight at anchors" (float_of_int exact) bound

let test_small_u_clamp () =
  (* u < 2v: the per-tree share is clamped up to 2; the result must
     still dominate scheduling u <= v singletons (ξ_1 = 0 each). *)
  let b = Multi_tree.bound ~m:2 ~t:8 ~u:3 ~v:4 in
  Alcotest.(check bool) "positive and finite" true (b > 0. && b < 1000.);
  Alcotest.(check (float 1e-9)) "u=0 is free" 0. (Multi_tree.bound ~m:2 ~t:8 ~u:0 ~v:4)

let test_overflow_folds_into_extra_trees () =
  (* u > t·v: more messages than tree leaves — extra trees appear. *)
  let b = Multi_tree.bound ~m:2 ~t:8 ~u:100 ~v:2 in
  let explicit = Multi_tree.bound ~m:2 ~t:8 ~u:100 ~v:13 in
  Alcotest.(check (float 1e-9)) "v raised to ceil(u/t)" explicit b

let test_invalid_args () =
  Alcotest.check_raises "v < 1" (Invalid_argument "Multi_tree.bound: v < 1")
    (fun () -> ignore (Multi_tree.bound ~m:2 ~t:8 ~u:4 ~v:0));
  Alcotest.check_raises "worst_exact range"
    (Invalid_argument "Multi_tree.worst_exact: u out of [2v, tv]") (fun () ->
      ignore (Multi_tree.worst_exact ~m:2 ~t:8 ~u:3 ~v:2))

let prop_bound_dominates_random_partitions =
  let arb =
    QCheck.make
      QCheck.Gen.(
        int_range 2 4 >>= fun m ->
        oneofl [ 1; 2 ] >>= fun n ->
        let t = int_of_float (float_of_int m ** float_of_int n) in
        int_range 1 6 >>= fun v ->
        list_size (return v) (int_range 2 t) >>= fun parts ->
        return (m, t, v, parts))
  in
  QCheck.Test.make ~name:"bound dominates any explicit partition" ~count:500
    arb
    (fun (m, t, v, parts) ->
      let u = List.fold_left ( + ) 0 parts in
      let total =
        List.fold_left (fun acc k -> acc + Xi.exact ~m ~t ~k) 0 parts
      in
      float_of_int total <= Multi_tree.bound ~m ~t ~u ~v +. 1e-9)

let suite =
  [
    ( "multi_tree",
      [
        Alcotest.test_case "v=1 reduces to tilde" `Quick
          test_single_tree_reduces_to_tilde;
        Alcotest.test_case "eq18 identity" `Quick test_eq18_identity;
        Alcotest.test_case "eq19 dominates exhaustive" `Quick
          test_bound_dominates_exhaustive;
        Alcotest.test_case "tight at anchors" `Quick test_bound_tight_at_anchor;
        Alcotest.test_case "small u clamp" `Quick test_small_u_clamp;
        Alcotest.test_case "overflow folds" `Quick
          test_overflow_folds_into_extra_trees;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
        QCheck_alcotest.to_alcotest prop_bound_dominates_random_partitions;
      ] );
  ]
