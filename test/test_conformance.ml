(* Randomized conformance: CSMA/DDCR must uphold its invariants on
   arbitrary small instances — random media, class shapes, arrival
   laws and protocol parameters.  Each case runs a full simulation
   with lockstep checking on (so replication divergence or a safety
   violation raises) and then checks the observable contracts. *)

module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Phy = Rtnet_channel.Phy
module Channel = Rtnet_channel.Channel
module Run = Rtnet_stats.Run

type case = {
  instance : Instance.t;
  params : Ddcr_params.t;
  horizon : int;
  seed : int;
  fault : Channel.fault option;
}

let case_gen =
  let open QCheck.Gen in
  let* phy_ix = int_range 0 2 in
  let phy, horizon =
    match phy_ix with
    | 0 -> (Phy.classic_ethernet, 600_000)
    | 1 -> (Phy.gigabit_ethernet, 5_000_000)
    | _ -> (Phy.atm_bus, 300_000)
  in
  let* z = int_range 1 5 in
  let* classes_per_source = int_range 1 2 in
  let law_of ix phase =
    match ix mod 6 with
    | 0 -> Arrival.Periodic { offset = phase }
    | 1 -> Arrival.Sporadic { mean_slack = 0.8 }
    | 2 -> Arrival.Greedy_burst
    | 3 -> Arrival.Poisson { intensity = 1.5 }
    | 4 -> Arrival.Staggered_burst { phase = 0.3 }
    | _ -> Arrival.On_off { on_windows = 2; off_windows = 2 }
  in
  let* specs =
    list_repeat (z * classes_per_source)
      (let* bits = int_range 400 8_000 in
       let* deadline = int_range (horizon / 10) (horizon / 2) in
       let* burst = int_range 1 3 in
       let* window = int_range (horizon / 8) (horizon / 2) in
       let* law_ix = int_range 0 5 in
       let* phase = int_range 0 (horizon / 10) in
       return (bits, deadline, burst, window, law_ix, phase))
  in
  let classes =
    List.mapi
      (fun i (bits, deadline, burst, window, law_ix, phase) ->
        ( {
            Message.cls_id = i;
            cls_name = Printf.sprintf "r%d" i;
            cls_source = i mod z;
            cls_bits = bits;
            cls_deadline = deadline;
            cls_burst = burst;
            cls_window = window;
          },
          law_of law_ix phase ))
      specs
  in
  let instance =
    Instance.create_exn ~name:"conformance" ~phy ~num_sources:z classes
  in
  let* ipc = int_range 1 2 in
  let* time_leaves = oneofl [ 16; 64 ] in
  let* theta_on = bool in
  let* burst_bits = oneofl [ 0; 16_384 ] in
  let base = Ddcr_params.default ~indices_per_source:ipc ~time_leaves instance in
  let params =
    Ddcr_params.with_burst
      (Ddcr_params.with_theta base
         (if theta_on then base.Ddcr_params.class_width else 0))
      burst_bits
  in
  let* seed = int_range 1 1_000_000 in
  let* faulty = bool in
  let fault =
    if faulty then Some { Channel.fault_rate = 0.05; fault_seed = seed } else None
  in
  return { instance; params; horizon; seed; fault }

let case_arb =
  QCheck.make
    ~print:(fun c ->
      Format.asprintf "%a / %a / horizon %d / seed %d / fault %b" Instance.pp
        c.instance Ddcr_params.pp c.params c.horizon c.seed (c.fault <> None))
    case_gen

let edf_order_per_source ~slot completions =
  let by_source = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let src = c.Run.c_msg.Message.cls.Message.cls_source in
      let prev = try Hashtbl.find by_source src with Not_found -> [] in
      Hashtbl.replace by_source src (c :: prev))
    completions;
  Hashtbl.fold
    (fun _src cs acc ->
      let cs = List.rev cs in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          (* The protocol commits to a frame at a contention-slot
             start; on an arbitrated medium the frame hits the wire one
             slot later, so arrivals within that slot could not have
             been considered. *)
          (b.Run.c_msg.Message.arrival + slot > a.Run.c_start
          || Message.compare_edf a.Run.c_msg b.Run.c_msg < 0)
          && ok rest
        | [ _ ] | [] -> true
      in
      acc && ok cs)
    by_source true

let prop_conformance =
  QCheck.Test.make ~name:"ddcr invariants on random instances" ~count:40
    case_arb
    (fun c ->
      let trace = Instance.trace c.instance ~seed:c.seed ~horizon:c.horizon in
      (* Lockstep + channel safety asserted inside the run. *)
      let o =
        Ddcr.run_trace ~check_lockstep:true ?fault:c.fault c.params c.instance
          trace ~horizon:c.horizon
      in
      let conserved =
        List.length o.Run.completions + List.length o.Run.unfinished
        = List.length trace
        && o.Run.dropped = []
      in
      let stats_consistent =
        match o.Run.channel with
        | Some st -> st.Channel.tx_count = List.length o.Run.completions
        | None -> false
      in
      let fc_respected =
        c.fault <> None
        || (not (Feasibility.check c.params c.instance).Feasibility.feasible)
        || List.for_all (fun cmp -> not (Run.missed cmp)) o.Run.completions
      in
      conserved && stats_consistent
      && edf_order_per_source
           ~slot:c.instance.Instance.phy.Phy.slot_bits o.Run.completions
      && fc_respected)

let prop_baselines_conserve =
  (* The baselines must uphold the harness-level contracts on the same
     random instances: conservation (BEB may drop, never lose) and
     channel-stats consistency. *)
  QCheck.Test.make ~name:"baseline invariants on random instances" ~count:25
    case_arb
    (fun c ->
      let trace = Instance.trace c.instance ~seed:c.seed ~horizon:c.horizon in
      let dcr =
        Rtnet_baselines.Csma_dcr.run_trace
          (Rtnet_baselines.Csma_dcr.of_ddcr c.params)
          c.instance trace ~horizon:c.horizon
      in
      let beb =
        Rtnet_baselines.Csma_cd_beb.run_trace ?fault:c.fault ~seed:c.seed
          c.instance trace ~horizon:c.horizon
      in
      let contract o =
        List.length o.Run.completions
        + List.length o.Run.unfinished
        + List.length o.Run.dropped
        = List.length trace
        &&
        match o.Run.channel with
        | Some st -> st.Channel.tx_count = List.length o.Run.completions
        | None -> false
      in
      contract dcr && dcr.Run.dropped = [] && contract beb)

let suite =
  [
    ( "conformance",
      [
        QCheck_alcotest.to_alcotest ~long:true prop_conformance;
        QCheck_alcotest.to_alcotest ~long:true prop_baselines_conserve;
      ] );
  ]
