module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Channel = Rtnet_channel.Channel
module Phy = Rtnet_channel.Phy
module Run = Rtnet_stats.Run

let ms = 1_000_000

(* --- Automaton unit tests (hand-driven channel feedback) --- *)

let tiny_params =
  {
    Ddcr_params.time_m = 2;
    time_leaves = 8;
    class_width = 1000;
    alpha = 0;
    theta = 0;
    static_m = 2;
    static_leaves = 4;
    static_indices = [| [| 0 |]; [| 3 |] |];
    burst_bits = 0;
  }

let mk_msg ?(uid = 0) ~arrival ~deadline () =
  {
    Message.uid;
    cls =
      {
        Message.cls_id = 0;
        cls_name = "m";
        cls_source = 0;
        cls_bits = 1000;
        cls_deadline = deadline;
        cls_burst = 1;
        cls_window = 100_000;
      };
    arrival;
  }

let clash ?survivor contenders =
  Channel.Clash { contenders; survivor }

let test_automaton_free_phase () =
  let a = Ddcr.Automaton.create tiny_params ~source:0 in
  Alcotest.(check string) "starts free" "free" (Ddcr.Automaton.phase_name a);
  Alcotest.(check bool) "silent without msg" true
    (Ddcr.Automaton.decide a ~msg_star:None = None);
  let m = mk_msg ~arrival:0 ~deadline:5000 () in
  (match Ddcr.Automaton.decide a ~msg_star:(Some m) with
  | Some att ->
    Alcotest.(check int) "attempts own frame" 0 att.Channel.att_source;
    Alcotest.(check int) "tag is uid" 0 att.Channel.att_tag
  | None -> Alcotest.fail "expected attempt in free phase");
  (* Tx and Idle keep it free; a clash starts CSMA/DDCR. *)
  Ddcr.Automaton.observe a ~resolution:Channel.Idle ~next_free:512;
  Alcotest.(check string) "still free" "free" (Ddcr.Automaton.phase_name a);
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:1024;
  Alcotest.(check string) "clash enters TTs" "tts" (Ddcr.Automaton.phase_name a)

let test_automaton_tts_walk () =
  let a = Ddcr.Automaton.create tiny_params ~source:0 in
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:1000;
  (* reft = 1000; a message with DM in [1000, 9000) maps to the root
     interval. *)
  let m = mk_msg ~arrival:0 ~deadline:3000 () (* DM = 3000 -> idx 2 *) in
  (match Ddcr.Automaton.decide a ~msg_star:(Some m) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected participation at root");
  (* Root clash: splits into [0,4) then [4,8). *)
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:1512;
  Alcotest.(check bool) "fingerprint shows two intervals" true
    (Astring_contains.contains (Ddcr.Automaton.fingerprint a) "[0+4)[4+4)");
  (* A message with idx 6 must stay silent while [0,4) is probed. *)
  let far = mk_msg ~uid:1 ~arrival:0 ~deadline:7100 () (* idx 6 *) in
  Alcotest.(check bool) "outside top interval: silent" true
    (Ddcr.Automaton.decide a ~msg_star:(Some far) = None);
  (* Empty left subtree, then a transmission closes the right one. *)
  Ddcr.Automaton.observe a ~resolution:Channel.Idle ~next_free:2024;
  Alcotest.(check bool) "f* advanced past left subtree" true
    (Astring_contains.contains (Ddcr.Automaton.fingerprint a) "f*=3");
  Ddcr.Automaton.observe a
    ~resolution:(Channel.Tx { src = 1; tag = 9; on_wire = 1160 })
    ~next_free:3184;
  Alcotest.(check string) "TTs over -> attempt" "attempt"
    (Ddcr.Automaton.phase_name a);
  Alcotest.(check bool) "reft reset by in-tree tx" true
    (Astring_contains.contains (Ddcr.Automaton.fingerprint a) "reft=3184")

let test_automaton_sts_path () =
  let a = Ddcr.Automaton.create tiny_params ~source:1 in
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:1000;
  (* Collide all the way down to time leaf 0. *)
  List.iter
    (fun nf ->
      Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:nf)
    [ 1512; 2024; 2536 ];
  (* [0,1) leaf clash -> static search *)
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:3048;
  Alcotest.(check string) "in STs" "sts" (Ddcr.Automaton.phase_name a);
  (* Source 1 owns static index 1: at the root static interval [0,4) it
     participates if its message is in class <= 0. *)
  let urgent = mk_msg ~uid:2 ~arrival:0 ~deadline:900 () (* idx <= 0 via f*+1 *) in
  (match Ddcr.Automaton.decide a ~msg_star:(Some urgent) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected STs participation");
  (* Static root clash splits into [0,2) and [2,4). *)
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 2) ]) ~next_free:3560;
  (* Peer alone in [0,2): transmits, interval popped, STs continues. *)
  Ddcr.Automaton.observe a
    ~resolution:(Channel.Tx { src = 0; tag = 0; on_wire = 1160 })
    ~next_free:4720;
  Alcotest.(check string) "still sts" "sts" (Ddcr.Automaton.phase_name a);
  (* Our transmission closes [2,4): STs completes, back to TTs with the
     colliding time leaf popped and reft reset. *)
  Ddcr.Automaton.observe a
    ~resolution:(Channel.Tx { src = 1; tag = 2; on_wire = 1160 })
    ~next_free:5880;
  Alcotest.(check string) "back in tts" "tts" (Ddcr.Automaton.phase_name a);
  Alcotest.(check bool) "time leaf popped, f*=0" true
    (Astring_contains.contains (Ddcr.Automaton.fingerprint a) "f*=0");
  Alcotest.(check bool) "reft updated at STs completion" true
    (Astring_contains.contains (Ddcr.Automaton.fingerprint a) "reft=5880")

let test_automaton_static_leaf_collision_rejected () =
  let a = Ddcr.Automaton.create tiny_params ~source:0 in
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:1000;
  List.iter
    (fun nf ->
      Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:nf)
    [ 1512; 2024; 2536; 3048 ];
  (* Descend the static tree to a leaf under repeated clashes: [0,4)
     then [0,2) then leaf [0,1) — a clash there is impossible. *)
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:3560;
  Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ]) ~next_free:4072;
  Alcotest.check_raises "static leaf collision"
    (Ddcr.Protocol_violation
       "collision on a static tree leaf: static indices are not disjoint")
    (fun () ->
      Ddcr.Automaton.observe a ~resolution:(clash [ (0, 0); (1, 1) ])
        ~next_free:4584)

(* --- End-to-end runs --- *)

let test_scenarios_safe_and_feasible () =
  List.iter
    (fun (name, inst) ->
      let params = Ddcr_params.default inst in
      let o = Ddcr.run ~check_lockstep:true ~seed:11 params inst ~horizon:(20 * ms) in
      let m = Run.metrics o in
      if (Feasibility.check params inst).Feasibility.feasible then
        Alcotest.(check int) (name ^ ": no misses when FC holds") 0
          m.Run.deadline_misses)
    Scenarios.all

let test_conservation () =
  let inst = Scenarios.trading ~gateways:3 in
  let horizon = 10 * ms in
  let trace = Instance.trace inst ~seed:5 ~horizon in
  let params = Ddcr_params.default inst in
  let o = Ddcr.run_trace params inst trace ~horizon in
  Alcotest.(check int) "completions + unfinished = arrivals"
    (List.length trace)
    (List.length o.Run.completions + List.length o.Run.unfinished);
  Alcotest.(check int) "ddcr never drops" 0 (List.length o.Run.dropped)

let test_bound_domination_under_adversary () =
  (* The core validation: for FC-feasible instances, every observed
     per-class worst latency is below the implementation bound, even
     under the greedy peak-load adversary. *)
  let check_inst name inst seed =
    let params = Ddcr_params.default inst in
    let report = Feasibility.check params inst in
    Alcotest.(check bool) (name ^ " feasible") true report.Feasibility.feasible;
    let adv = Instance.with_law inst Arrival.Greedy_burst in
    let o = Ddcr.run ~seed params adv ~horizon:(30 * ms) in
    Alcotest.(check int) (name ^ " no misses") 0
      (Run.metrics o).Run.deadline_misses;
    List.iter
      (fun (cls_id, worst) ->
        let c =
          List.find
            (fun c -> c.Message.cls_id = cls_id)
            (Instance.classes adv)
        in
        let bound = Feasibility.latency_bound_impl params adv c in
        Alcotest.(check bool)
          (Printf.sprintf "%s class %d: %d <= %.0f" name cls_id worst bound)
          true
          (float_of_int worst <= bound))
      (Run.per_class_worst_latency o)
  in
  check_inst "videoconference" (Scenarios.videoconference ~stations:5) 3;
  check_inst "atc" (Scenarios.air_traffic_control ~radars:4) 4;
  check_inst "uniform-0.2"
    (Scenarios.uniform ~sources:6 ~classes_per_source:1 ~load:0.2
       ~deadline_windows:3.0)
    5

let test_infeasible_instance_misses_under_adversary () =
  (* Conversely the trading instance violates its FCs and the greedy
     adversary does produce deadline misses. *)
  let inst = Scenarios.trading ~gateways:4 in
  let params = Ddcr_params.default inst in
  Alcotest.(check bool) "FC fails" false
    (Feasibility.check params inst).Feasibility.feasible;
  let adv = Instance.with_law inst Arrival.Greedy_burst in
  let o = Ddcr.run ~seed:7 params adv ~horizon:(30 * ms) in
  Alcotest.(check bool) "misses occur" true
    ((Run.metrics o).Run.deadline_misses > 0)

let test_lockstep_across_seeds () =
  let inst = Scenarios.trading ~gateways:4 in
  let params = Ddcr_params.default inst in
  List.iter
    (fun seed -> ignore (Ddcr.run ~check_lockstep:true ~seed params inst ~horizon:(5 * ms)))
    [ 1; 2; 3; 42 ]

let test_deterministic_replay () =
  let inst = Scenarios.videoconference ~stations:4 in
  let params = Ddcr_params.default inst in
  let o1 = Ddcr.run ~seed:13 params inst ~horizon:(10 * ms) in
  let o2 = Ddcr.run ~seed:13 params inst ~horizon:(10 * ms) in
  let key o =
    List.map (fun c -> (c.Run.c_msg.Message.uid, c.Run.c_start)) o.Run.completions
  in
  Alcotest.(check (list (pair int int))) "identical" (key o1) (key o2)

let test_arbitration_medium () =
  let inst = Scenarios.atm_fabric ~ports:4 in
  let params = Ddcr_params.default inst in
  let o = Ddcr.run ~check_lockstep:true ~seed:2 params inst ~horizon:(2 * ms) in
  let m = Run.metrics o in
  Alcotest.(check bool) "delivers" true (m.Run.delivered > 100);
  Alcotest.(check int) "no misses" 0 m.Run.deadline_misses

let test_compressed_time_speeds_up_far_deadlines () =
  (* Two sources, one far-deadline message each, and a deliberately
     short scheduling horizon cF << d: with θ = 0 the channel cycles
     until the deadlines draw near; compressed time pulls them in. *)
  let phy = Phy.classic_ethernet in
  let mk_cls id src =
    {
      Message.cls_id = id;
      cls_name = "far" ^ string_of_int id;
      cls_source = src;
      cls_bits = 1000;
      cls_deadline = 1_000_000;
      cls_burst = 1;
      cls_window = 2_000_000;
    }
  in
  let inst =
    Instance.create_exn ~name:"far" ~phy ~num_sources:2
      [
        (mk_cls 0 0, Arrival.Periodic { offset = 0 });
        (mk_cls 1 1, Arrival.Periodic { offset = 0 });
      ]
  in
  let base =
    {
      Ddcr_params.time_m = 2;
      time_leaves = 8;
      class_width = 1000;
      alpha = 0;
      theta = 0;
      static_m = 2;
      static_leaves = 4;
      static_indices = [| [| 0 |]; [| 1 |] |];
      burst_bits = 0;
    }
  in
  let finish_of params =
    let o = Ddcr.run ~seed:1 params inst ~horizon:2_000_000 in
    match o.Run.completions with
    | c :: _ -> c.Run.c_finish
    | [] -> Alcotest.fail "nothing delivered"
  in
  let lazy_finish = finish_of base in
  let compressed_finish = finish_of (Ddcr_params.with_theta base 8000) in
  Alcotest.(check bool)
    (Printf.sprintf "compressed %d << lazy %d" compressed_finish lazy_finish)
    true
    (compressed_finish * 2 < lazy_finish)

let test_packet_bursting_rescues_small_frames () =
  (* Section 5: on Gigabit Ethernet, frames near the 4096-bit slot cost
     a full contention slot each; bursting amortizes the acquisition.
     The overloaded 6-gateway trading instance misses deadlines without
     bursting and stops missing with the 802.3z burst limit. *)
  let inst = Scenarios.trading ~gateways:6 in
  let horizon = 30 * ms in
  let trace = Instance.trace inst ~seed:3 ~horizon in
  let base = Ddcr_params.default inst in
  let plain = Run.metrics (Ddcr.run_trace base inst trace ~horizon) in
  let burst =
    Run.metrics
      (Ddcr.run_trace (Ddcr_params.with_burst base 65_536) inst trace ~horizon)
  in
  Alcotest.(check bool) "plain overloaded" true (plain.Run.deadline_misses > 0);
  Alcotest.(check int) "bursting rescues" 0 burst.Run.deadline_misses;
  Alcotest.(check bool) "fewer inversions too" true
    (burst.Run.inversions < plain.Run.inversions)

let test_bursting_preserves_safety_and_conservation () =
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 10 * ms in
  let trace = Instance.trace inst ~seed:5 ~horizon in
  let p = Ddcr_params.with_burst (Ddcr_params.default inst) 32_768 in
  (* run_trace verifies channel safety internally and raises on
     violation; lockstep is also checked. *)
  let o = Ddcr.run_trace ~check_lockstep:true p inst trace ~horizon in
  Alcotest.(check int) "conservation"
    (List.length trace)
    (List.length o.Run.completions + List.length o.Run.unfinished)

let test_runs_under_every_branching () =
  (* The automaton is branching-degree agnostic: all invariants hold
     under binary, ternary and octal trees. *)
  let inst = Scenarios.trading ~gateways:3 in
  let horizon = 8 * ms in
  let trace = Instance.trace inst ~seed:7 ~horizon in
  List.iter
    (fun m ->
      let params = Ddcr_params.default ~branching:m inst in
      let o = Ddcr.run_trace ~check_lockstep:true params inst trace ~horizon in
      Alcotest.(check int)
        (Printf.sprintf "conservation m=%d" m)
        (List.length trace)
        (List.length o.Run.completions + List.length o.Run.unfinished))
    [ 2; 3; 8 ]

let test_allocation_matters_on_skewed_load () =
  (* E17's behavioural claim: on a skewed workload, localising the
     heavy source's static indices (contiguous blocks) beats spreading
     them round-robin across the tree. *)
  let inst = Scenarios.skewed ~sources:8 ~heavy_fraction:0.7 in
  let horizon = 25 * ms in
  let trace = Instance.trace inst ~seed:4 ~horizon in
  let run alloc =
    Run.metrics
      (Ddcr.run_trace (Ddcr_params.default ~allocation:alloc inst) inst trace
         ~horizon)
  in
  let rr = run Ddcr_params.Round_robin in
  let contig = run Ddcr_params.Contiguous in
  Alcotest.(check bool)
    (Printf.sprintf "contiguous (%d) <= round robin (%d) misses"
       contig.Run.deadline_misses rr.Run.deadline_misses)
    true
    (contig.Run.deadline_misses <= rr.Run.deadline_misses);
  Alcotest.(check bool) "contiguous faster on average" true
    (contig.Run.mean_latency < rr.Run.mean_latency)

let test_edf_service_order_within_source () =
  (* A source's own messages complete in EDF order (LA ranks Q). *)
  let inst = Scenarios.trading ~gateways:2 in
  let params = Ddcr_params.default inst in
  let o = Ddcr.run ~seed:9 params inst ~horizon:(10 * ms) in
  let by_source = Hashtbl.create 4 in
  List.iter
    (fun c ->
      let src = c.Run.c_msg.Message.cls.Message.cls_source in
      let prev = try Hashtbl.find by_source src with Not_found -> [] in
      Hashtbl.replace by_source src (c :: prev))
    o.Run.completions;
  Hashtbl.iter
    (fun _src cs ->
      let cs = List.rev cs in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          (* b must not have been pending with a strictly smaller DM
             when a started. *)
          (b.Run.c_msg.Message.arrival > a.Run.c_start
          || Message.compare_edf a.Run.c_msg b.Run.c_msg < 0)
          && ok rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "per-source EDF order" true (ok cs))
    by_source

let suite =
  [
    ( "ddcr",
      [
        Alcotest.test_case "automaton free phase" `Quick test_automaton_free_phase;
        Alcotest.test_case "automaton tts walk" `Quick test_automaton_tts_walk;
        Alcotest.test_case "automaton sts path" `Quick test_automaton_sts_path;
        Alcotest.test_case "automaton static leaf rejected" `Quick
          test_automaton_static_leaf_collision_rejected;
        Alcotest.test_case "scenarios safe" `Slow test_scenarios_safe_and_feasible;
        Alcotest.test_case "conservation" `Quick test_conservation;
        Alcotest.test_case "bound domination" `Slow
          test_bound_domination_under_adversary;
        Alcotest.test_case "infeasible misses" `Slow
          test_infeasible_instance_misses_under_adversary;
        Alcotest.test_case "lockstep" `Slow test_lockstep_across_seeds;
        Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        Alcotest.test_case "arbitration medium" `Quick test_arbitration_medium;
        Alcotest.test_case "compressed time" `Quick
          test_compressed_time_speeds_up_far_deadlines;
        Alcotest.test_case "packet bursting rescues" `Slow
          test_packet_bursting_rescues_small_frames;
        Alcotest.test_case "bursting safe" `Quick
          test_bursting_preserves_safety_and_conservation;
        Alcotest.test_case "every branching degree" `Quick
          test_runs_under_every_branching;
        Alcotest.test_case "allocation on skewed load" `Slow
          test_allocation_matters_on_skewed_load;
        Alcotest.test_case "per-source EDF order" `Quick
          test_edf_service_order_within_source;
      ] );
  ]
