module Xi = Rtnet_core.Xi
module Tree_search = Rtnet_core.Tree_search
module Int_math = Rtnet_util.Int_math

(* The (m, t) grid used by the exhaustive identities. *)
let grid = [ (2, 4); (2, 8); (2, 32); (2, 64); (3, 9); (3, 27); (4, 16); (4, 64); (5, 25); (8, 64) ]

let test_base_values () =
  (* Eq. 4: the t = m base tree. *)
  List.iter
    (fun m ->
      Alcotest.(check int) "xi_0^m" 1 (Xi.exact ~m ~t:m ~k:0);
      Alcotest.(check int) "xi_1^m" 0 (Xi.exact ~m ~t:m ~k:1);
      for p = 1 to m / 2 do
        Alcotest.(check int)
          (Printf.sprintf "xi_2p^%d p=%d" m p)
          (1 + m - (2 * p))
          (Xi.exact ~m ~t:m ~k:(2 * p))
      done)
    [ 2; 3; 4; 5; 7; 8 ]

let test_three_implementations_agree () =
  List.iter
    (fun (m, t) ->
      let tab = Xi.table ~m ~t in
      for k = 0 to t do
        let closed = Xi.exact ~m ~t ~k in
        let defining = Xi.of_recursion ~m ~t ~k in
        Alcotest.(check int)
          (Printf.sprintf "m=%d t=%d k=%d closed=dc" m t k)
          tab.(k) closed;
        Alcotest.(check int)
          (Printf.sprintf "m=%d t=%d k=%d closed=eq1" m t k)
          closed defining
      done)
    grid

let test_eq5_eq6_eq7 () =
  List.iter
    (fun (m, t) ->
      Alcotest.(check int) "eq5 = xi_2" (Xi.exact ~m ~t ~k:2) (Xi.eq5 ~m ~t);
      Alcotest.(check int) "eq6 = xi_{2t/m}"
        (Xi.exact ~m ~t ~k:(2 * t / m))
        (Xi.eq6 ~m ~t);
      Alcotest.(check int) "eq7 = xi_t" (Xi.exact ~m ~t ~k:t) (Xi.eq7 ~m ~t))
    grid

let test_eq8_derivative () =
  List.iter
    (fun (m, t) ->
      if t > m then
        for p = 1 to (t / 2) - 1 do
          Alcotest.(check int)
            (Printf.sprintf "eq8 m=%d t=%d p=%d" m t p)
            (Xi.exact ~m ~t ~k:((2 * p) + 2) - Xi.exact ~m ~t ~k:(2 * p))
            (Xi.derivative ~m ~t ~p)
        done)
    grid

let test_eq15_linear_tail () =
  List.iter
    (fun (m, t) ->
      for k = 2 * t / m to t do
        Alcotest.(check int)
          (Printf.sprintf "eq15 m=%d t=%d k=%d" m t k)
          (Xi.exact ~m ~t ~k)
          (Xi.linear_tail ~m ~t ~k)
      done)
    grid

let test_odd_k_is_even_minus_one () =
  (* Eq. 3. *)
  List.iter
    (fun (m, t) ->
      let p_hi = Int_math.cdiv t 2 - 1 in
      for p = 0 to p_hi do
        if (2 * p) + 1 <= t then
          Alcotest.(check int)
            (Printf.sprintf "eq3 m=%d t=%d p=%d" m t p)
            (Xi.exact ~m ~t ~k:(2 * p) - 1)
            (Xi.exact ~m ~t ~k:((2 * p) + 1))
      done)
    grid

let test_tilde_dominates_everywhere () =
  List.iter
    (fun (m, t) ->
      for k = 2 to t do
        let gap = Xi.tilde ~m ~t (float_of_int k) -. float_of_int (Xi.exact ~m ~t ~k) in
        Alcotest.(check bool)
          (Printf.sprintf "tilde >= xi m=%d t=%d k=%d" m t k)
          true (gap >= -1e-9)
      done)
    grid

let test_tilde_exact_at_anchors () =
  List.iter
    (fun (m, t) ->
      let rec anchors i acc =
        let k = 2 * Int_math.pow m i in
        if k > t then List.rev acc else anchors (i + 1) (k :: acc)
      in
      List.iter
        (fun k ->
          if k <= t then begin
            Alcotest.(check bool) "flagged as anchor" true
              (Xi.tilde_is_exact_at ~m ~t ~k);
            Alcotest.(check (float 1e-6))
              (Printf.sprintf "tilde exact m=%d t=%d k=%d" m t k)
              (float_of_int (Xi.exact ~m ~t ~k))
              (Xi.tilde ~m ~t (float_of_int k))
          end)
        (anchors 0 [])
    )
    grid

let test_tilde_concavity () =
  List.iter
    (fun (m, t) ->
      let f k = Xi.tilde ~m ~t k in
      let rec go k =
        if k +. 2. > float_of_int t then ()
        else begin
          let second = f (k +. 2.) -. (2. *. f (k +. 1.)) +. f k in
          Alcotest.(check bool)
            (Printf.sprintf "concave m=%d t=%d k=%.0f" m t k)
            true (second <= 1e-9);
          go (k +. 1.)
        end
      in
      go 2.)
    grid

let test_gap_bounds () =
  (* Eq. 13 per m, and Eq. 14 universally (over the even abscissas the
     bound is derived for). *)
  List.iter
    (fun (m, t) ->
      let gap = Xi.max_gap ~m ~t in
      Alcotest.(check bool)
        (Printf.sprintf "eq13 m=%d t=%d" m t)
        true
        (gap <= (Xi.gap_bound ~m *. float_of_int t) +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "eq14 m=%d t=%d" m t)
        true
        (gap <= (Xi.gap_bound_universal *. float_of_int t) +. 1e-9))
    grid

let test_gap_bound_universal_value () =
  (* 9.54 % (Eq. 14). *)
  Alcotest.(check bool) "about 0.0954" true
    (abs_float (Xi.gap_bound_universal -. 0.0954) < 5e-4);
  (* Eq. 14 coefficient equals Eq. 13 at m = 9 and dominates small m. *)
  Alcotest.(check (float 1e-9)) "= gap_bound 9" (Xi.gap_bound ~m:9)
    Xi.gap_bound_universal;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "eq13(%d) <= eq14" m)
        true
        (Xi.gap_bound ~m <= Xi.gap_bound_universal +. 1e-9))
    [ 2; 3; 4; 5; 6; 7; 8; 9; 16; 32; 64 ]

let test_argmax_location () =
  (* Eq. 12: the even-k maximum of the gap lies in [2t/m^2, 2t/m]. *)
  List.iter
    (fun (m, t) ->
      if t >= m * m then begin
        let tab = Xi.table ~m ~t in
        let gap k = Xi.tilde ~m ~t (float_of_int k) -. float_of_int tab.(k) in
        let max_over lo hi =
          let best = ref neg_infinity in
          let k = ref (if lo mod 2 = 0 then lo else lo + 1) in
          while !k <= hi do
            if gap !k > !best then best := gap !k;
            k := !k + 2
          done;
          !best
        in
        let full = max_over 2 (2 * t / m) in
        let inner = max_over (2 * t / (m * m)) (2 * t / m) in
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "max attained in [2t/m^2, 2t/m] m=%d t=%d" m t)
          full inner
      end)
    grid

let test_fig2_quaternary_beats_binary () =
  let binary = Xi.table ~m:2 ~t:64 and quaternary = Xi.table ~m:4 ~t:64 in
  for k = 2 to 64 do
    Alcotest.(check bool)
      (Printf.sprintf "4-ary <= 2-ary at k=%d" k)
      true
      (quaternary.(k) <= binary.(k))
  done

let test_invalid_arguments () =
  Alcotest.check_raises "m=1" (Invalid_argument "Xi: branching degree m must be >= 2")
    (fun () -> ignore (Xi.exact ~m:1 ~t:4 ~k:2));
  Alcotest.check_raises "t not power"
    (Invalid_argument "Xi: t must be a positive power of m, t >= m") (fun () ->
      ignore (Xi.exact ~m:2 ~t:12 ~k:2));
  Alcotest.check_raises "k too big" (Invalid_argument "Xi: k out of [0, t]")
    (fun () -> ignore (Xi.exact ~m:2 ~t:8 ~k:9))

let test_best_branching () =
  (* For 64 leaves, Fig. 2's conclusion: quaternary beats binary. *)
  let m = Xi.best_branching ~min_leaves:64 ~candidates:[ 2; 4 ] in
  Alcotest.(check int) "prefers 4" 4 m

let test_expected_degenerate_cases () =
  Alcotest.(check (float 1e-9)) "k=0 is one empty slot" 1. (Xi.expected ~m:2 ~t:8 ~k:0);
  Alcotest.(check (float 1e-9)) "k=1 is free" 0. (Xi.expected ~m:2 ~t:8 ~k:1);
  (* k = t: every subset is the full set, so the expectation equals the
     deterministic cost xi_t^t. *)
  Alcotest.(check (float 1e-6)) "k=t deterministic"
    (float_of_int (Xi.exact ~m:2 ~t:16 ~k:16))
    (Xi.expected ~m:2 ~t:16 ~k:16);
  (* Hand value: m=2, t=4, k=2: root collision always; the two leaves
     land in the same half with probability 1/3 (cost 1+1+1) and in
     different halves with 2/3 (cost 1): E = 5/3. *)
  Alcotest.(check (float 1e-9)) "hand computed 5/3" (5. /. 3.)
    (Xi.expected ~m:2 ~t:4 ~k:2)

let test_expected_below_worst () =
  List.iter
    (fun (m, t) ->
      for k = 2 to t do
        Alcotest.(check bool)
          (Printf.sprintf "E <= worst m=%d t=%d k=%d" m t k)
          true
          (Xi.expected ~m ~t ~k <= float_of_int (Xi.exact ~m ~t ~k) +. 1e-9)
      done)
    [ (2, 32); (4, 64); (3, 27) ]

let test_expected_efficiency_bounds () =
  let e = Xi.expected_efficiency ~m:4 ~t:64 ~k:16 ~frame_slots:3.0 in
  Alcotest.(check bool) "in (0,1)" true (e > 0. && e < 1.);
  (* Longer frames amortize the search better. *)
  let e_long = Xi.expected_efficiency ~m:4 ~t:64 ~k:16 ~frame_slots:30.0 in
  Alcotest.(check bool) "longer frames more efficient" true (e_long > e)

let prop_expected_matches_monte_carlo =
  let arb =
    QCheck.make
      QCheck.Gen.(
        oneofl [ (2, 16); (2, 32); (4, 16); (3, 27) ] >>= fun (m, t) ->
        int_range 2 t >>= fun k ->
        int_bound 10_000 >>= fun seed -> return (m, t, k, seed))
  in
  QCheck.Test.make ~name:"expected matches Monte Carlo within 5 sigma-ish"
    ~count:15 arb
    (fun (m, t, k, seed) ->
      let exact = Xi.expected ~m ~t ~k in
      let rng = Rtnet_util.Prng.create seed in
      let n = 4000 in
      let sum = ref 0 in
      for _ = 1 to n do
        let leaves = Array.init t Fun.id in
        Rtnet_util.Prng.shuffle rng leaves;
        let active = Array.to_list (Array.sub leaves 0 k) in
        sum := !sum + Tree_search.cost (Tree_search.run ~m ~t ~active)
      done;
      let mc = float_of_int !sum /. float_of_int n in
      abs_float (mc -. exact) < 0.08 *. (exact +. 1.))

let test_closed_form_on_big_trees () =
  (* The closed form is O(log t); the divide-and-conquer table is an
     independent derivation — compare them on trees far beyond the
     brute-force range. *)
  List.iter
    (fun (m, t) ->
      let tab = Xi.table ~m ~t in
      for k = 0 to t do
        Alcotest.(check int)
          (Printf.sprintf "m=%d t=%d k=%d" m t k)
          tab.(k) (Xi.exact ~m ~t ~k)
      done)
    [ (2, 4096); (4, 1024); (3, 729); (8, 512) ]

let test_total_over_ks () =
  let tab = Xi.table ~m:2 ~t:8 in
  let expected = tab.(2) + tab.(3) + tab.(4) + tab.(5) + tab.(6) + tab.(7) + tab.(8) in
  Alcotest.(check int) "sum" expected (Xi.total_over_ks ~m:2 ~t:8)

(* Properties *)

let tree_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun m ->
    int_range 1 (match m with 2 -> 6 | 3 -> 4 | _ -> 3) >>= fun n ->
    return (m, Int_math.pow m n))

let prop_witness_achieves_xi =
  let arb =
    QCheck.make
      QCheck.Gen.(
        tree_gen >>= fun (m, t) ->
        int_range 0 t >>= fun k -> return (m, t, k))
  in
  QCheck.Test.make ~name:"worst_case_subset achieves xi" ~count:300 arb
    (fun (m, t, k) ->
      let w = Xi.worst_case_subset ~m ~t ~k in
      List.length w = k
      && List.sort_uniq compare w = w
      && Tree_search.cost (Tree_search.run ~m ~t ~active:w) = Xi.exact ~m ~t ~k)

let prop_random_subset_below_xi =
  let arb =
    QCheck.make
      QCheck.Gen.(
        tree_gen >>= fun (m, t) ->
        int_range 0 t >>= fun k ->
        int_bound 1_000_000 >>= fun seed -> return (m, t, k, seed))
  in
  QCheck.Test.make ~name:"any subset's search cost <= xi" ~count:500 arb
    (fun (m, t, k, seed) ->
      let rng = Rtnet_util.Prng.create seed in
      let leaves = Array.init t Fun.id in
      Rtnet_util.Prng.shuffle rng leaves;
      let active = Array.to_list (Array.sub leaves 0 k) in
      Tree_search.cost (Tree_search.run ~m ~t ~active) <= Xi.exact ~m ~t ~k)

let prop_monotone_after_peak =
  (* xi is non-increasing on the linear tail [2t/m, t] with slope -1. *)
  QCheck.Test.make ~name:"linear tail slope -1" ~count:100
    (QCheck.make tree_gen)
    (fun (m, t) ->
      let ok = ref true in
      for k = (2 * t / m) + 1 to t do
        if Xi.exact ~m ~t ~k <> Xi.exact ~m ~t ~k:(k - 1) - 1 then ok := false
      done;
      !ok)

let suite =
  [
    ( "xi",
      [
        Alcotest.test_case "eq4 base values" `Quick test_base_values;
        Alcotest.test_case "three implementations agree" `Quick
          test_three_implementations_agree;
        Alcotest.test_case "eq5/6/7" `Quick test_eq5_eq6_eq7;
        Alcotest.test_case "eq8 derivative" `Quick test_eq8_derivative;
        Alcotest.test_case "eq15 linear tail" `Quick test_eq15_linear_tail;
        Alcotest.test_case "eq3 odd k" `Quick test_odd_k_is_even_minus_one;
        Alcotest.test_case "tilde dominates" `Quick test_tilde_dominates_everywhere;
        Alcotest.test_case "tilde exact at 2m^i" `Quick test_tilde_exact_at_anchors;
        Alcotest.test_case "tilde concave" `Quick test_tilde_concavity;
        Alcotest.test_case "eq13/14 gap bounds" `Quick test_gap_bounds;
        Alcotest.test_case "eq14 constant" `Quick test_gap_bound_universal_value;
        Alcotest.test_case "eq12 argmax location" `Quick test_argmax_location;
        Alcotest.test_case "fig2 claim" `Quick test_fig2_quaternary_beats_binary;
        Alcotest.test_case "invalid args" `Quick test_invalid_arguments;
        Alcotest.test_case "best branching" `Quick test_best_branching;
        Alcotest.test_case "closed form big trees" `Slow
          test_closed_form_on_big_trees;
        Alcotest.test_case "total over ks" `Quick test_total_over_ks;
        Alcotest.test_case "expected: degenerate" `Quick
          test_expected_degenerate_cases;
        Alcotest.test_case "expected <= worst" `Quick test_expected_below_worst;
        Alcotest.test_case "expected efficiency" `Quick
          test_expected_efficiency_bounds;
        QCheck_alcotest.to_alcotest prop_expected_matches_monte_carlo;
        QCheck_alcotest.to_alcotest prop_witness_achieves_xi;
        QCheck_alcotest.to_alcotest prop_random_subset_below_xi;
        QCheck_alcotest.to_alcotest prop_monotone_after_peak;
      ] );
  ]
