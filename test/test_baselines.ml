module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Run = Rtnet_stats.Run
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Beb = Rtnet_baselines.Csma_cd_beb
module Dcr = Rtnet_baselines.Csma_dcr
module Tdma = Rtnet_baselines.Tdma
module Np_edf = Rtnet_edf.Np_edf

let ms = 1_000_000

let conservation o trace =
  List.length o.Run.completions
  + List.length o.Run.unfinished
  + List.length o.Run.dropped
  = List.length trace

let test_beb_runs_and_conserves () =
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 10 * ms in
  let trace = Instance.trace inst ~seed:2 ~horizon in
  let o = Beb.run_trace ~seed:2 inst trace ~horizon in
  Alcotest.(check bool) "conservation" true (conservation o trace);
  Alcotest.(check bool) "delivers" true (List.length o.Run.completions > 100)

let test_beb_deterministic_per_seed () =
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 5 * ms in
  let key o =
    List.map (fun c -> (c.Run.c_msg.Message.uid, c.Run.c_start)) o.Run.completions
  in
  let o1 = Beb.run ~seed:17 inst ~horizon and o2 = Beb.run ~seed:17 inst ~horizon in
  Alcotest.(check (list (pair int int))) "same seed same run" (key o1) (key o2);
  let o3 = Beb.run ~seed:18 inst ~horizon in
  Alcotest.(check bool) "different seed differs" true (key o1 <> key o3)

let test_beb_drops_under_extreme_contention () =
  (* Many sources bursting simultaneously: BEB's 16-attempt limit bites
     (with a pathological 1-slot cap to force repeated collisions). *)
  let inst =
    Instance.with_law
      (Scenarios.uniform ~sources:12 ~classes_per_source:2 ~load:0.9
         ~deadline_windows:1.0)
      Arrival.Greedy_burst
  in
  let horizon = 20 * ms in
  let params = { Beb.max_attempts = 4; max_backoff_exp = 1 } in
  let o = Beb.run ~params ~seed:5 inst ~horizon in
  Alcotest.(check bool) "drops happen" true (List.length o.Run.dropped > 0)

let test_dcr_bounded_and_conserves () =
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 10 * ms in
  let trace = Instance.trace inst ~seed:4 ~horizon in
  let o = Dcr.run_trace (Dcr.default inst) inst trace ~horizon in
  Alcotest.(check bool) "conservation" true (conservation o trace);
  Alcotest.(check int) "never drops" 0 (List.length o.Run.dropped)

let test_dcr_more_inversions_than_ddcr () =
  (* The whole point of the time-tree layer: deadline-blind static
     resolution produces more deadline inversions. *)
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 30 * ms in
  let trace = Instance.trace inst ~seed:3 ~horizon in
  let params = Ddcr_params.default inst in
  let ddcr = Run.metrics (Ddcr.run_trace params inst trace ~horizon) in
  let dcr =
    Run.metrics (Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ddcr %d < dcr %d" ddcr.Run.inversions dcr.Run.inversions)
    true
    (ddcr.Run.inversions < dcr.Run.inversions)

let test_tdma_no_collisions () =
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 10 * ms in
  let o = Tdma.run ~seed:6 inst ~horizon in
  match o.Run.channel with
  | Some st ->
    Alcotest.(check int) "zero collisions" 0 st.Rtnet_channel.Channel.collision_slots
  | None -> Alcotest.fail "expected channel stats"

let test_tdma_rejects_oversized_frames () =
  let inst = Scenarios.videoconference ~stations:3 in
  let horizon = ms in
  let trace = Instance.trace inst ~seed:1 ~horizon in
  let tiny = { Tdma.slot_bits = 100 } in
  Alcotest.check_raises "oversize"
    (Invalid_argument "Tdma.run_trace: frame larger than the TDMA slot")
    (fun () -> ignore (Tdma.run_trace ~params:tiny inst trace ~horizon))

let test_protocol_ordering_on_shared_trace () =
  (* The paper's qualitative claim on one trace: the oracle lower-bounds
     DDCR, and DDCR beats the deadline-blind baselines on worst
     latency. *)
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 30 * ms in
  let trace = Instance.trace inst ~seed:3 ~horizon in
  let params = Ddcr_params.default inst in
  let worst o = (Run.metrics o).Run.worst_latency in
  let oracle = worst (Np_edf.run inst.Instance.phy trace ~horizon) in
  let ddcr = worst (Ddcr.run_trace params inst trace ~horizon) in
  let dcr = worst (Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon) in
  let tdma = worst (Tdma.run_trace inst trace ~horizon) in
  Alcotest.(check bool)
    (Printf.sprintf "oracle %d <= ddcr %d" oracle ddcr)
    true (oracle <= ddcr);
  Alcotest.(check bool)
    (Printf.sprintf "ddcr %d < dcr %d" ddcr dcr)
    true (ddcr < dcr);
  Alcotest.(check bool)
    (Printf.sprintf "ddcr %d < tdma %d" ddcr tdma)
    true (ddcr < tdma)

let test_all_protocols_safe () =
  (* Every channel-based protocol ends with a consistent safety log
     (contend would have raised otherwise); spot-check stats sanity. *)
  let inst = Scenarios.trading ~gateways:3 in
  let horizon = 5 * ms in
  let trace = Instance.trace inst ~seed:8 ~horizon in
  let params = Ddcr_params.default inst in
  List.iter
    (fun o ->
      match o.Run.channel with
      | Some st ->
        Alcotest.(check bool)
          (o.Run.protocol ^ " carried = completions")
          true
          (st.Rtnet_channel.Channel.tx_count = List.length o.Run.completions)
      | None -> Alcotest.fail "expected stats")
    [
      Ddcr.run_trace params inst trace ~horizon;
      Beb.run_trace ~seed:8 inst trace ~horizon;
      Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon;
    ]

let suite =
  [
    ( "baselines",
      [
        Alcotest.test_case "beb conserves" `Quick test_beb_runs_and_conserves;
        Alcotest.test_case "beb deterministic" `Quick test_beb_deterministic_per_seed;
        Alcotest.test_case "beb drops" `Slow test_beb_drops_under_extreme_contention;
        Alcotest.test_case "dcr conserves" `Quick test_dcr_bounded_and_conserves;
        Alcotest.test_case "dcr inversions" `Slow test_dcr_more_inversions_than_ddcr;
        Alcotest.test_case "tdma no collisions" `Quick test_tdma_no_collisions;
        Alcotest.test_case "tdma oversize" `Quick test_tdma_rejects_oversized_frames;
        Alcotest.test_case "protocol ordering" `Slow
          test_protocol_ordering_on_shared_trace;
        Alcotest.test_case "all safe" `Quick test_all_protocols_safe;
      ] );
  ]
