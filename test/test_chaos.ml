(* rtnet.chaos: fault-schedule generator, adversarial search over the
   supervised pool, delta-debugging shrinker and replay artifacts.

   The load-bearing properties: sampling is a pure function of
   (seed, index); the committed smoke configuration keeps finding its
   seeded violations; shrinking preserves the verdict class while
   shedding fault events; a frozen repro replays to the same verdict
   and trace fingerprint; and a hung candidate costs its watchdog
   timeout, not the search. *)

module Json = Rtnet_util.Json
module Fault_plan = Rtnet_channel.Fault_plan
module Topo = Rtnet_topology.Topo
module Spec = Rtnet_campaign.Spec
module Oracle = Rtnet_analysis.Oracle
module Generator = Rtnet_chaos.Generator
module Candidate = Rtnet_chaos.Candidate
module Search = Rtnet_chaos.Search
module Shrink = Rtnet_chaos.Shrink
module Repro = Rtnet_chaos.Repro
module Soak = Rtnet_chaos.Soak

let with_tmp_dir f =
  let dir = Filename.temp_file "rtnet_chaos" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* The same configuration as test/fixtures/chaos_smoke.json: a uniform
   workload near the feasibility edge, where the fault-free run passes
   (the lint gate asserts that) but injected faults push messages over
   their deadlines or strand a crashed source. *)
let smoke_scenario =
  { Spec.sc_kind = "uniform"; sc_size = 4; sc_load = 0.55;
    sc_deadline_windows = 1.5; sc_fanout = 1 }

let smoke_candidate =
  { Candidate.cf_scenario = smoke_scenario; cf_horizon_ms = 2; cf_params = None }

let smoke_config =
  {
    (Search.default_config smoke_candidate) with
    Search.s_seed = 7;
    s_count = 12;
    s_jobs = 2;
    s_budget =
      { Generator.default_budget with Generator.g_max_events = 4;
        g_max_rate = 0.6 };
  }

let horizon = 2 * 1_000_000

(* -------------------- generator -------------------- *)

let plan_bytes p = Json.to_string (Fault_plan.spec_to_json p)

let sample ?(budget = Generator.default_budget) ?(seed = 7) index =
  Generator.sample ~budget ~seed ~index ~horizon ~sources:4

let test_generator_deterministic () =
  for i = 0 to 7 do
    Alcotest.(check string)
      (Printf.sprintf "candidate %d is a pure function of (seed, index)" i)
      (plan_bytes (sample i))
      (plan_bytes (sample i))
  done;
  let distinct =
    List.sort_uniq compare (List.init 8 (fun i -> plan_bytes (sample i)))
  in
  Alcotest.(check bool) "indices explore different plans" true
    (List.length distinct >= 6);
  Alcotest.(check bool) "seeds explore different plans" true
    (plan_bytes (sample ~seed:7 0) <> plan_bytes (sample ~seed:8 0))

let test_generator_respects_budget () =
  let budget =
    { Generator.default_budget with Generator.g_max_events = 3;
      g_max_rate = 0.4 }
  in
  for i = 0 to 31 do
    let p = sample ~budget i in
    let n = Fault_plan.event_count p in
    Alcotest.(check bool)
      (Printf.sprintf "candidate %d within event budget" i)
      true
      (n >= 1 && n <= 3);
    (match Fault_plan.validate ~horizon p with
    | Ok () -> ()
    | Error e ->
      Alcotest.fail (Printf.sprintf "candidate %d invalid: %s" i e));
    match p.Fault_plan.sp_garble with
    | Some (Fault_plan.Iid { rate }) ->
      Alcotest.(check bool) "iid rate capped" true (rate <= 0.4)
    | Some (Fault_plan.Gilbert_elliott { rate_good; rate_bad; _ }) ->
      Alcotest.(check bool) "ge rates capped" true
        (rate_good <= 0.4 && rate_bad <= 0.4)
    | None -> ()
  done

let test_generator_family_gates () =
  (* Disabling fault families restricts what sampling may emit. *)
  let crash_only =
    { Generator.default_budget with Generator.g_garble = false;
      g_misperceive = false }
  in
  for i = 0 to 15 do
    let p = sample ~budget:crash_only i in
    Alcotest.(check bool)
      (Printf.sprintf "candidate %d is crash-only" i)
      true
      (p.Fault_plan.sp_garble = None
      && p.Fault_plan.sp_misperception = 0.
      && p.Fault_plan.sp_crashes <> [])
  done;
  Alcotest.check_raises "all families disabled"
    (Invalid_argument "Generator.sample: every fault family disabled")
    (fun () ->
      ignore
        (sample
           ~budget:
             { Generator.default_budget with Generator.g_garble = false;
               g_misperceive = false; g_crash = false }
           0));
  Alcotest.check_raises "zero event budget"
    (Invalid_argument "Generator.sample: max_events < 1")
    (fun () ->
      ignore
        (sample
           ~budget:{ Generator.default_budget with Generator.g_max_events = 0 }
           0))

(* -------------------- search -------------------- *)

let run_smoke_search () = Search.run smoke_config

let test_search_finds_seeded_violations () =
  let res = run_smoke_search () in
  Alcotest.(check int) "every candidate examined" 12 res.Search.r_examined;
  Alcotest.(check bool) "not flagged as exhausted" false
    res.Search.r_exhausted;
  Alcotest.(check (list int)) "nothing gave up" []
    (List.map (fun g -> g.Search.gu_index) res.Search.r_gave_up);
  Alcotest.(check bool) "finds violations" true
    (List.length res.Search.r_findings > 0);
  Alcotest.(check bool) "but not everything fails" true
    (List.length res.Search.r_findings < res.Search.r_examined);
  (* Findings arrive sorted and verdict-bearing. *)
  let idx = List.map (fun f -> f.Search.fi_index) res.Search.r_findings in
  Alcotest.(check (list int)) "sorted by candidate index"
    (List.sort compare idx) idx;
  List.iter
    (fun f ->
      Alcotest.(check bool) "finding verdicts are failures" true
        (Oracle.is_failure f.Search.fi_report.Candidate.rp_verdict))
    res.Search.r_findings

let test_search_deterministic () =
  let tags r =
    List.map
      (fun f ->
        ( f.Search.fi_index,
          Oracle.label f.Search.fi_report.Candidate.rp_verdict,
          f.Search.fi_report.Candidate.rp_fingerprint ))
      r.Search.r_findings
  in
  Alcotest.(check bool) "two runs, same findings" true
    (tags (run_smoke_search ()) = tags (run_smoke_search ()))

let test_search_watchdog_hung_candidate () =
  (* The hang hook makes candidate 0 sleep far past the watchdog: it
     must be killed, retried once, then surface as a structured
     give-up — while the other candidates complete normally. *)
  let config =
    {
      smoke_config with
      Search.s_count = 3;
      s_hang_ms = Some 60_000;
      s_watchdog_s = Some 0.2;
      s_retries = 1;
      s_backoff_s = 0.01;
    }
  in
  let res = Search.run config in
  Alcotest.(check int) "all candidates accounted for" 3 res.Search.r_examined;
  (match res.Search.r_gave_up with
  | [ g ] ->
    Alcotest.(check int) "hung candidate gave up" 0 g.Search.gu_index;
    Alcotest.(check int) "after watchdog kill + one retry" 2
      g.Search.gu_attempts;
    Alcotest.(check bool) "reason names the watchdog" true
      (Astring_contains.contains g.Search.gu_reason "watchdog")
  | gs ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the hung candidate to give up, saw %d"
         (List.length gs)));
  Alcotest.(check bool) "candidates 1 and 2 still examined" true
    (not (List.exists (fun f -> f.Search.fi_index = 0) res.Search.r_findings))

let test_search_wall_budget_partial () =
  (* An already-exhausted budget yields partial (here: empty) results
     and the exhausted flag — never an exception. *)
  let res =
    Search.run { smoke_config with Search.s_wall_budget_s = Some 0. }
  in
  Alcotest.(check bool) "flagged exhausted" true res.Search.r_exhausted;
  Alcotest.(check bool) "partial results" true
    (res.Search.r_examined < smoke_config.Search.s_count)

let test_search_config_roundtrip () =
  match Search.config_of_json (Search.config_to_json smoke_config) with
  | Ok c -> Alcotest.(check bool) "round-trips" true (c = smoke_config)
  | Error e -> Alcotest.fail e

(* -------------------- shrink -------------------- *)

let four_event_finding () =
  let res = run_smoke_search () in
  match
    List.filter
      (fun f -> Fault_plan.event_count f.Search.fi_candidate.Candidate.cd_plan = 4)
      res.Search.r_findings
  with
  | f :: _ -> f
  | [] -> Alcotest.fail "smoke search lost its 4-event finding"

let oracle_for cd plan =
  (Candidate.run smoke_candidate { cd with Candidate.cd_plan = plan })
    .Candidate.rp_verdict

let test_shrink_reduces_and_preserves () =
  let f = four_event_finding () in
  let cd = f.Search.fi_candidate in
  let target = f.Search.fi_report.Candidate.rp_verdict in
  let res = Shrink.run ~oracle:(oracle_for cd) ~target cd.Candidate.cd_plan in
  let n = Fault_plan.event_count res.Shrink.sh_plan in
  Alcotest.(check bool) "at most 25% of the original events" true (n <= 1);
  Alcotest.(check bool) "verdict class preserved" true
    (Oracle.same_class res.Shrink.sh_verdict target);
  Alcotest.(check bool) "minimized plan still fails on re-check" true
    (Oracle.same_class (oracle_for cd res.Shrink.sh_plan) target);
  Alcotest.(check bool) "oracle consulted" true (res.Shrink.sh_checks > 0)

let test_shrink_keeps_unreproducible_input () =
  (* If the plan does not reproduce the target verdict, shrinking has
     nothing to stand on: the input comes back unchanged. *)
  let plan = Fault_plan.iid 0.05 in
  let res =
    Shrink.run
      ~oracle:(fun _ -> Oracle.Pass)
      ~target:(Oracle.Failed_resync { source = 0 })
      plan
  in
  Alcotest.(check string) "plan unchanged"
    (plan_bytes plan)
    (plan_bytes res.Shrink.sh_plan)

(* -------------------- repro -------------------- *)

let test_repro_roundtrip_and_replay () =
  let f = four_event_finding () in
  let repro =
    Repro.make ~config:smoke_candidate ~candidate:f.Search.fi_candidate
      ~report:f.Search.fi_report ~note:"test"
  in
  (match Repro.of_json (Repro.to_json repro) with
  | Ok r ->
    Alcotest.(check string) "artifact bytes round-trip"
      (Json.to_string (Repro.to_json repro))
      (Json.to_string (Repro.to_json r))
  | Error e -> Alcotest.fail e);
  let r = Repro.replay repro in
  Alcotest.(check bool) "verdict reproduces" true r.Repro.rr_verdict_ok;
  Alcotest.(check bool) "fingerprint reproduces" true r.Repro.rr_fingerprint_ok;
  (* Tampering with the fault seed must be caught by replay. *)
  let tampered = { repro with Repro.re_fault_seed = 42 } in
  let r = Repro.replay tampered in
  Alcotest.(check bool) "tampered seed detected" false
    (r.Repro.rr_verdict_ok && r.Repro.rr_fingerprint_ok)

let test_repro_rejects_bad_artifacts () =
  let good = Repro.to_json
      (Repro.make ~config:smoke_candidate
         ~candidate:
           { Candidate.cd_plan = Fault_plan.iid 0.1; cd_trace_seed = 1;
             cd_fault_seed = 2 }
         ~report:
           {
             Candidate.rp_verdict = Oracle.Pass;
             rp_fingerprint = "00";
             rp_delivered = 0;
             rp_misses = 0;
             rp_elapsed_s = 0.;
           }
         ~note:"")
  in
  let patch key v =
    match good with
    | Json.Obj fields ->
      Json.Obj (List.map (fun (k, x) -> (k, if k = key then v else x)) fields)
    | _ -> Alcotest.fail "artifact is not an object"
  in
  (match Repro.of_json (patch "chaos_repro_version" (Json.Int 99)) with
  | Error e ->
    Alcotest.(check bool) "version mismatch diagnosed" true
      (Astring_contains.contains e "version")
  | Ok _ -> Alcotest.fail "accepted an unknown schema version");
  match
    Repro.of_json
      (patch "plan"
         (Fault_plan.spec_to_json
            (Fault_plan.crash ~source:0 ~from_:0 ~until:(50 * 1_000_000))))
  with
  | Error e ->
    Alcotest.(check bool) "plan re-validated against the horizon" true
      (Astring_contains.contains e "plan")
  | Ok _ -> Alcotest.fail "accepted a plan reaching past the horizon"

(* Schema v2 added the optional protocol-parameter override; a v1
   artifact (no "params" key) must keep decoding, and a file claiming
   v1 while carrying the v2-only key must be rejected, not silently
   reinterpreted. *)
let test_repro_v1_back_compat () =
  let v2 =
    Repro.to_json
      (Repro.make
         ~config:
           { smoke_candidate with
             Candidate.cf_params =
               Some (Rtnet_core.Ddcr_params.default
                       (Spec.instance smoke_scenario)) }
         ~candidate:
           { Candidate.cd_plan = Fault_plan.iid 0.1; cd_trace_seed = 1;
             cd_fault_seed = 2 }
         ~report:
           {
             Candidate.rp_verdict = Oracle.Pass;
             rp_fingerprint = "00";
             rp_delivered = 0;
             rp_misses = 0;
             rp_elapsed_s = 0.;
           }
         ~note:"")
  in
  let fields = match v2 with Json.Obj f -> f | _ -> Alcotest.fail "not an object" in
  let v1 =
    Json.Obj
      (List.filter_map
         (fun (k, x) ->
           if k = "params" then None
           else if k = "chaos_repro_version" then Some (k, Json.Int 1)
           else Some (k, x))
         fields)
  in
  (match Repro.of_json v1 with
  | Ok r ->
    Alcotest.(check bool) "v1 decodes without a params override" true
      (r.Repro.re_params = None)
  | Error e -> Alcotest.fail ("v1 artifact rejected: " ^ e));
  let v1_with_params =
    Json.Obj
      (List.map
         (fun (k, x) ->
           (k, if k = "chaos_repro_version" then Json.Int 1 else x))
         fields)
  in
  match Repro.of_json v1_with_params with
  | Error e ->
    Alcotest.(check bool) "v1 + params is diagnosed" true
      (Astring_contains.contains e "version")
  | Ok _ -> Alcotest.fail "accepted a v1 artifact with a v2-only key"

let test_candidate_run_deterministic () =
  let f = four_event_finding () in
  let fp () =
    (Candidate.run smoke_candidate f.Search.fi_candidate)
      .Candidate.rp_fingerprint
  in
  Alcotest.(check string) "same candidate, same fingerprint" (fp ()) (fp ())

(* -------------------- soak -------------------- *)

let test_soak_collects_deduped_repros () =
  with_tmp_dir (fun dir ->
      let config =
        {
          Soak.so_search = { smoke_config with Search.s_count = 6 };
          so_rounds = 2;
          so_wall_budget_s = None;
          so_out_dir = Some dir;
        }
      in
      let res = Soak.run config in
      Alcotest.(check int) "both rounds ran" 2 res.Soak.so_rounds_run;
      Alcotest.(check int) "every candidate examined" 12 res.Soak.so_examined;
      Alcotest.(check bool) "found something" true (res.Soak.so_findings > 0);
      Alcotest.(check int) "one artifact per distinct finding"
        res.Soak.so_findings
        (List.length res.Soak.so_repro_paths);
      (* Every written artifact is itself a valid, loadable repro. *)
      List.iter
        (fun path ->
          match Repro.load ~path with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e)
        res.Soak.so_repro_paths)

(* -------------------- federated (topology) chaos -------------------- *)

let topo_fixture = Filename.concat "fixtures" "topo_chaos_repro_min.json"

let topo_config =
  { Candidate.tc_segments = 3; tc_fanout = 2; tc_sources = 4; tc_load = 0.3;
    tc_deadline_windows = 8.0; tc_horizon_ms = 5 }

let plans_bytes plans =
  String.concat ";" (List.map (fun (n, sp) -> n ^ "=" ^ plan_bytes sp) plans)

let test_sample_topo_deterministic_and_targeted () =
  let topo = Candidate.topo_tree topo_config in
  let horizon = topo_config.Candidate.tc_horizon_ms * 1_000_000 in
  let sample i =
    Generator.sample_topo ~budget:Generator.default_budget ~seed:5 ~index:i
      ~horizon topo
  in
  Alcotest.(check string) "pure function of (seed, index)"
    (plans_bytes (sample 3))
    (plans_bytes (sample 3));
  Alcotest.(check bool) "different indices draw different plans" true
    (plans_bytes (sample 3) <> plans_bytes (sample 4)
    || plans_bytes (sample 5) <> plans_bytes (sample 6));
  for i = 0 to 15 do
    let plans = sample i in
    List.iter
      (fun (seg, sp) ->
        Alcotest.(check bool) "plan targets a known segment" true
          (Topo.find_segment topo seg <> None);
        match Fault_plan.validate ~horizon sp with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
      plans;
    (* The tentpole guarantee: a non-empty federated plan always
       exercises bridge failover — at least one crash window parks an
       incoming bridge station. *)
    if plans <> [] then
      Alcotest.(check bool)
        (Printf.sprintf "sample %d crashes a bridge station" i)
        true
        (List.exists
           (fun (seg, sp) ->
             List.exists
               (fun cw ->
                 List.exists
                   (fun b ->
                     b.Topo.br_to = seg
                     && b.Topo.br_station = cw.Fault_plan.cw_source)
                   topo.Topo.tp_bridges)
               sp.Fault_plan.sp_crashes)
           plans)
  done

let load_topo_fixture () =
  match Repro.load_topo ~path:topo_fixture with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_run_topo_deterministic_and_classified () =
  let repro = load_topo_fixture () in
  let config, td = Repro.topo_candidate repro in
  let r1 = Candidate.run_topo config td in
  let r2 = Candidate.run_topo config td in
  Alcotest.(check string) "same candidate, same fingerprint"
    r1.Candidate.rp_fingerprint r2.Candidate.rp_fingerprint;
  Alcotest.(check bool) "verdict matches the frozen one" true
    (Oracle.same_class r1.Candidate.rp_verdict repro.Repro.rt_verdict);
  match r1.Candidate.rp_verdict with
  | Oracle.Handoff_loss { bridge; chains } ->
    Alcotest.(check string) "shed at the crashed bridge" "br2" bridge;
    Alcotest.(check bool) "chains counted" true (chains > 0)
  | v -> Alcotest.fail ("expected a hand-off loss, got " ^ Oracle.label v)

let test_topo_repro_replay_and_load_any () =
  let repro = load_topo_fixture () in
  let r = Repro.replay_topo repro in
  Alcotest.(check bool) "verdict reproduces" true r.Repro.rr_verdict_ok;
  Alcotest.(check bool) "fingerprint reproduces" true r.Repro.rr_fingerprint_ok;
  (* Tampering with the frozen fault plan must be caught: without the
     bridge crash the run passes, which matches neither the expected
     verdict nor the expected fingerprint. *)
  let tampered = { repro with Repro.rt_plans = [] } in
  let r = Repro.replay_topo tampered in
  Alcotest.(check bool) "tampered plan detected" false
    (r.Repro.rr_verdict_ok && r.Repro.rr_fingerprint_ok);
  (* load_any dispatches on the version key, for both kinds. *)
  (match Repro.load_any ~path:topo_fixture with
  | Ok (Repro.Federated _) -> ()
  | Ok (Repro.Plain _ | Repro.Admission _) ->
    Alcotest.fail "topo artifact loaded as another kind"
  | Error e -> Alcotest.fail e);
  let f = four_event_finding () in
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "plain.json" in
      Repro.save ~path
        (Repro.make ~config:smoke_candidate ~candidate:f.Search.fi_candidate
           ~report:f.Search.fi_report ~note:"");
      match Repro.load_any ~path with
      | Ok (Repro.Plain _) -> ()
      | Ok (Repro.Federated _ | Repro.Admission _) ->
        Alcotest.fail "plain artifact loaded as another kind"
      | Error e -> Alcotest.fail e)

let test_shrink_topo_preserves_class () =
  let repro = load_topo_fixture () in
  let config, td = Repro.topo_candidate repro in
  let oracle plans =
    (Candidate.run_topo config { td with Candidate.td_plans = plans })
      .Candidate.rp_verdict
  in
  let res =
    Shrink.run_topo ~oracle ~target:repro.Repro.rt_verdict repro.Repro.rt_plans
  in
  Alcotest.(check bool) "verdict class preserved" true
    (Oracle.same_class res.Shrink.st_verdict repro.Repro.rt_verdict);
  Alcotest.(check bool) "oracle consulted" true (res.Shrink.st_checks > 0);
  let events plans =
    List.fold_left (fun a (_, sp) -> a + Fault_plan.event_count sp) 0 plans
  in
  Alcotest.(check bool) "never grows" true
    (events res.Shrink.st_plans <= events repro.Repro.rt_plans);
  (* An unreproducible input comes back unchanged, as with plain
     shrinking. *)
  let res =
    Shrink.run_topo
      ~oracle:(fun _ -> Oracle.Pass)
      ~target:repro.Repro.rt_verdict repro.Repro.rt_plans
  in
  Alcotest.(check string) "plans unchanged"
    (plans_bytes repro.Repro.rt_plans)
    (plans_bytes res.Shrink.st_plans)

let test_topo_repro_rejects_bad_artifacts () =
  let good = Repro.topo_to_json (load_topo_fixture ()) in
  let patch key v =
    match good with
    | Json.Obj fields ->
      Json.Obj (List.map (fun (k, x) -> (k, if k = key then v else x)) fields)
    | _ -> Alcotest.fail "artifact is not an object"
  in
  (match Repro.topo_of_json (patch "topo_chaos_repro_version" (Json.Int 99)) with
  | Error e ->
    Alcotest.(check bool) "version mismatch diagnosed" true
      (Astring_contains.contains e "version")
  | Ok _ -> Alcotest.fail "accepted an unknown schema version");
  (match
     Repro.topo_of_json
       (patch "plans"
          (Json.Obj
             [ ("ghost", Fault_plan.spec_to_json (Fault_plan.iid 0.1)) ]))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a plan naming an unknown segment");
  match
    Repro.topo_of_json
      (patch "plans"
         (Json.Obj
            [
              ( "seg0",
                Fault_plan.spec_to_json
                  (Fault_plan.crash ~source:4 ~from_:0 ~until:(50 * 1_000_000))
              );
            ]))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a plan reaching past the horizon"

let test_search_topo_deterministic () =
  let config =
    {
      (Search.default_topo_config topo_config) with
      Search.t_seed = 29;
      t_count = 4;
      t_jobs = 2;
    }
  in
  let key r =
    List.map
      (fun f ->
        (f.Search.tf_index, f.Search.tf_report.Candidate.rp_fingerprint))
      r.Search.tr_findings
  in
  let r1 = Search.run_topo config in
  let r2 = Search.run_topo config in
  Alcotest.(check int) "all candidates examined" 4 r1.Search.tr_examined;
  Alcotest.(check (list (pair int string)))
    "same seed, same findings" (key r1) (key r2)

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "generator deterministic" `Quick
          test_generator_deterministic;
        Alcotest.test_case "generator respects budget" `Quick
          test_generator_respects_budget;
        Alcotest.test_case "generator family gates" `Quick
          test_generator_family_gates;
        Alcotest.test_case "search finds seeded violations" `Quick
          test_search_finds_seeded_violations;
        Alcotest.test_case "search deterministic" `Quick
          test_search_deterministic;
        Alcotest.test_case "search watchdog on hung candidate" `Quick
          test_search_watchdog_hung_candidate;
        Alcotest.test_case "search wall budget partial" `Quick
          test_search_wall_budget_partial;
        Alcotest.test_case "search config round-trip" `Quick
          test_search_config_roundtrip;
        Alcotest.test_case "shrink reduces and preserves" `Quick
          test_shrink_reduces_and_preserves;
        Alcotest.test_case "shrink keeps unreproducible input" `Quick
          test_shrink_keeps_unreproducible_input;
        Alcotest.test_case "repro round-trip and replay" `Quick
          test_repro_roundtrip_and_replay;
        Alcotest.test_case "repro rejects bad artifacts" `Quick
          test_repro_rejects_bad_artifacts;
        Alcotest.test_case "repro v1 back-compat" `Quick
          test_repro_v1_back_compat;
        Alcotest.test_case "candidate run deterministic" `Quick
          test_candidate_run_deterministic;
        Alcotest.test_case "soak collects deduped repros" `Quick
          test_soak_collects_deduped_repros;
        Alcotest.test_case "sample_topo deterministic and targeted" `Quick
          test_sample_topo_deterministic_and_targeted;
        Alcotest.test_case "run_topo deterministic and classified" `Slow
          test_run_topo_deterministic_and_classified;
        Alcotest.test_case "topo repro replay and load_any" `Slow
          test_topo_repro_replay_and_load_any;
        Alcotest.test_case "shrink_topo preserves class" `Slow
          test_shrink_topo_preserves_class;
        Alcotest.test_case "topo repro rejects bad artifacts" `Quick
          test_topo_repro_rejects_bad_artifacts;
        Alcotest.test_case "search_topo deterministic" `Slow
          test_search_topo_deterministic;
      ] );
  ]
