(* rtnet.analysis: config linter, trace invariant checker, bounded
   exhaustive checker, trace serialization. *)

module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Instance = Rtnet_workload.Instance
module Scenarios = Rtnet_workload.Scenarios
module Diagnostic = Rtnet_analysis.Diagnostic
module Config_lint = Rtnet_analysis.Config_lint
module Trace_check = Rtnet_analysis.Trace_check
module Bounded_check = Rtnet_analysis.Bounded_check
module Trace_io = Rtnet_analysis.Trace_io

let ms = 1_000_000

let rules ds = List.map (fun d -> d.Diagnostic.rule_id) ds

let has_rule r ds = List.mem r (rules ds)

let error_rules ds = rules (Diagnostic.errors ds)

(* (a) A known-feasible scenario lints clean: no errors, no warnings. *)
let test_feasible_scenario_clean () =
  let inst = Scenarios.videoconference ~stations:6 in
  let diags = Config_lint.check (Ddcr_params.default inst) inst in
  Alcotest.(check int) "no errors" 0 (Diagnostic.count Diagnostic.Error diags);
  Alcotest.(check int) "no warnings" 0
    (Diagnostic.count Diagnostic.Warning diags);
  Alcotest.(check bool) "margin reported" true (has_rule "FEAS-MARGIN" diags)

(* (b) Deliberately infeasible instances are caught. *)
let test_overload_caught () =
  let inst = Instance.scale_windows (Scenarios.trading ~gateways:4) 0.05 in
  let diags = Config_lint.check (Ddcr_params.default inst) inst in
  Alcotest.(check bool) "overload is an error" true
    (List.mem "CFG-OVERLOAD" (error_rules diags))

let test_strict_promotes_bddcr () =
  (* Trading fails the conservative B_DDCR bound while the centralized
     oracle accepts it: warning by default, error under ~strict. *)
  let inst = Scenarios.trading ~gateways:4 in
  let p = Ddcr_params.default inst in
  let lax = Config_lint.check p inst in
  Alcotest.(check bool) "lax: warning only" true
    (has_rule "FEAS-BDDCR" lax && not (Diagnostic.has_errors lax));
  let strict = Config_lint.check ~strict:true p inst in
  Alcotest.(check bool) "strict: error" true
    (List.mem "FEAS-BDDCR" (error_rules strict))

let test_horizon_shutout_caught () =
  (* Shrink the time tree so c*F cannot cover the largest deadline. *)
  let inst = Scenarios.videoconference ~stations:4 in
  let p = Ddcr_params.default inst in
  let p = { p with Ddcr_params.class_width = inst.Instance.phy.Rtnet_channel.Phy.slot_bits } in
  let diags = Config_lint.check p inst in
  Alcotest.(check bool) "shut-out horizon is an error" true
    (List.mem "CFG-HORIZON" (error_rules diags))

(* A real simulated trace passes every invariant. *)
let run_with_trace inst ~horizon =
  let params = Ddcr_params.default inst in
  let workload = Instance.trace inst ~seed:6 ~horizon in
  let record, finish = Ddcr_trace.collector () in
  let outcome = Ddcr.run_trace ~on_event:record params inst workload ~horizon in
  (workload, outcome, finish ())

let test_real_trace_clean () =
  let inst = Scenarios.trading ~gateways:4 in
  let workload, outcome, events = run_with_trace inst ~horizon:(10 * ms) in
  let diags = Trace_check.check_run ~workload ~outcome events in
  Alcotest.(check (list string)) "no diagnostics" [] (rules diags)

(* (c) Hand-mutated traces are caught, violation by violation. *)
let test_mutated_traces_caught () =
  let inst = Scenarios.trading ~gateways:4 in
  let workload, _, events = run_with_trace inst ~horizon:(5 * ms) in
  let first_frame =
    List.find_map
      (function
        | Ddcr_trace.Frame_sent { time; finish; source; uid; _ } ->
          Some (time, finish, source, uid)
        | _ -> None)
      events
  in
  let ft, ff, fs, fu = Option.get first_frame in
  (* Overlapping frame: a second source transmits mid-frame. *)
  let overlapping =
    Ddcr_trace.Frame_sent
      {
        time = ft + 1;
        finish = ff + 1;
        source = fs + 1;
        uid = 999_999;
        via = Ddcr_trace.Free_csma;
      }
  in
  let mutated =
    List.concat_map
      (fun e ->
        match e with
        | Ddcr_trace.Frame_sent { uid; _ } when uid = fu -> [ e; overlapping ]
        | _ -> [ e ])
      events
  in
  Alcotest.(check bool) "overlap caught" true
    (List.mem "TRC-SAFETY" (error_rules (Trace_check.check mutated)));
  (* Unbalanced brackets: every Tts_end removed. *)
  let unbalanced =
    List.filter (function Ddcr_trace.Tts_end _ -> false | _ -> true) events
  in
  let nesting = Trace_check.check unbalanced in
  Alcotest.(check bool) "unbalanced caught" true
    (List.mem "TRC-NESTING" (error_rules nesting)
    || has_rule "TRC-TRUNCATED" nesting);
  (* Deadline miss: pretend the first frame was due one bit-time before
     it started. *)
  let late = Trace_check.check ~deadlines:[ (fu, ft - 1) ] events in
  Alcotest.(check bool) "deadline miss caught" true
    (List.mem "TRC-DEADLINE" (error_rules late));
  (* Illegal phase: an "sts" slot outside any static tree search. *)
  let bad_phase =
    Ddcr_trace.Idle_slot { time = 0; phase = "sts" } :: events
  in
  Alcotest.(check bool) "illegal phase caught" true
    (List.mem "TRC-PHASE" (error_rules (Trace_check.check bad_phase)));
  (* Accounting: the channel claims one fewer frame than the trace. *)
  let _, outcome, _ = run_with_trace inst ~horizon:(5 * ms) in
  let st = Option.get outcome.Rtnet_stats.Run.channel in
  let cooked =
    { st with Rtnet_channel.Channel.tx_count = st.Rtnet_channel.Channel.tx_count - 1 }
  in
  Alcotest.(check bool) "accounting drift caught" true
    (List.mem "TRC-ACCOUNT"
       (error_rules (Trace_check.check ~stats:cooked ~workload events)))

(* Fault epochs downgrade timeliness violations to degradation
   warnings; safety is never relaxed. *)
let test_fault_epoch_degrades_deadline_miss () =
  let inst = Scenarios.trading ~gateways:4 in
  let _, _, events = run_with_trace inst ~horizon:(5 * ms) in
  let first_frame =
    List.find_map
      (function
        | Ddcr_trace.Frame_sent { time; finish; source; uid; _ } ->
          Some (time, finish, source, uid)
        | _ -> None)
      events
  in
  let ft, ff, fs, fu = Option.get first_frame in
  let deadlines = [ (fu, ft - 1) ] in
  (* Covered by an explicit epoch: a warning, not an error. *)
  let covered =
    Trace_check.check ~deadlines ~fault_epochs:[ (0, ft) ] events
  in
  Alcotest.(check bool) "miss excused inside epoch" false
    (List.mem "TRC-DEADLINE" (error_rules covered));
  Alcotest.(check bool) "degradation warning emitted" true
    (has_rule "TRC-DEGRADED" covered);
  (* An epoch entirely after the frame finished cannot have delayed
     it: the miss stays a violation. *)
  let late_epoch =
    Trace_check.check ~deadlines ~fault_epochs:[ (ff + 1, ff + 2) ] events
  in
  Alcotest.(check bool) "late epoch does not excuse" true
    (List.mem "TRC-DEADLINE" (error_rules late_epoch));
  (* Epochs are also derived from crash/resync events in the trace. *)
  let with_fault_events =
    Ddcr_trace.Crash { time = 0; source = fs }
    :: List.concat_map
         (fun e ->
           match e with
           | Ddcr_trace.Frame_sent { uid; _ } when uid = fu ->
             [ e; Ddcr_trace.Resync { time = ft; source = fs } ]
           | _ -> [ e ])
         events
  in
  let derived = Trace_check.check ~deadlines with_fault_events in
  Alcotest.(check bool) "event-derived epoch excuses" false
    (List.mem "TRC-DEADLINE" (error_rules derived));
  Alcotest.(check bool) "event-derived degradation warned" true
    (has_rule "TRC-DEGRADED" derived);
  (* Safety is never relaxed: a mid-frame overlap inside an epoch is
     still an error. *)
  let overlapping =
    Ddcr_trace.Frame_sent
      {
        time = ft + 1;
        finish = ff + 1;
        source = fs + 1;
        uid = 999_999;
        via = Ddcr_trace.Free_csma;
      }
  in
  let mutated =
    List.concat_map
      (fun e ->
        match e with
        | Ddcr_trace.Frame_sent { uid; _ } when uid = fu -> [ e; overlapping ]
        | _ -> [ e ])
      events
  in
  Alcotest.(check bool) "safety not excused by epochs" true
    (List.mem "TRC-SAFETY"
       (error_rules
          (Trace_check.check ~fault_epochs:[ (0, ff + 10) ] mutated)))

(* (d) Bounded exhaustive checker over m in {2,3}, q <= 9. *)
let test_bounded_sweep () =
  let diags = Bounded_check.sweep ~max_m:3 ~max_leaves:9 () in
  Alcotest.(check (list string)) "no errors" [] (error_rules diags);
  Alcotest.(check int) "five shapes verified" 5
    (List.length
       (List.filter (fun d -> d.Diagnostic.rule_id = "BND-OK") diags))

let test_bounded_catches_wrong_bound () =
  (* Sanity that the checker is not vacuous: a shape whose xi table it
     recomputes must match the closed form; feed the checker the
     mismatching pair by checking a valid shape and asserting the rules
     it would use exist. *)
  let diags = Bounded_check.check_shape ~m:2 ~leaves:4 in
  Alcotest.(check bool) "reports BND-OK" true (has_rule "BND-OK" diags)

(* Trace serialization round-trips. *)
let test_trace_io_roundtrip () =
  let inst = Scenarios.trading ~gateways:4 in
  let workload, _, events = run_with_trace inst ~horizon:(5 * ms) in
  let dm_of uid =
    List.find_map
      (fun m ->
        if m.Rtnet_workload.Message.uid = uid then
          Some (Rtnet_workload.Message.abs_deadline m)
        else None)
      workload
  in
  let path = Filename.temp_file "rtnet_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace_io.output ~deadline_of:dm_of oc events;
      close_out oc;
      match Trace_io.parse_file path with
      | Error e -> Alcotest.fail e
      | Ok (parsed, deadlines) ->
        Alcotest.(check bool) "events round-trip" true (parsed = events);
        Alcotest.(check bool) "deadlines harvested" true (deadlines <> []);
        Alcotest.(check (list string)) "parsed trace checks clean" []
          (rules (Trace_check.check ~deadlines parsed)))

let test_trace_io_rejects_garbage () =
  (match Trace_io.parse "frame t=1 finish=2" with
  | Error e ->
    Alcotest.(check bool) "mentions line" true
      (Astring_contains.contains e "line 1")
  | Ok _ -> Alcotest.fail "accepted a frame line without source/uid/via");
  match Trace_io.parse "warp t=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown tag"

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "feasible scenario lints clean" `Quick
          test_feasible_scenario_clean;
        Alcotest.test_case "overload caught" `Quick test_overload_caught;
        Alcotest.test_case "strict promotes B_DDCR" `Quick
          test_strict_promotes_bddcr;
        Alcotest.test_case "horizon shut-out caught" `Quick
          test_horizon_shutout_caught;
        Alcotest.test_case "real trace clean" `Quick test_real_trace_clean;
        Alcotest.test_case "mutated traces caught" `Quick
          test_mutated_traces_caught;
        Alcotest.test_case "fault epochs degrade deadline misses" `Quick
          test_fault_epoch_degrades_deadline_miss;
        Alcotest.test_case "bounded sweep" `Quick test_bounded_sweep;
        Alcotest.test_case "bounded reports" `Quick
          test_bounded_catches_wrong_bound;
        Alcotest.test_case "trace io roundtrip" `Quick test_trace_io_roundtrip;
        Alcotest.test_case "trace io rejects garbage" `Quick
          test_trace_io_rejects_garbage;
      ] );
  ]
