module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message

let test_all_valid () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun c ->
          match Message.cls_validate c with
          | Ok () -> ()
          | Error e -> Alcotest.fail (name ^ ": " ^ e))
        (Instance.classes inst))
    Scenarios.all

let test_loads_below_capacity () =
  List.iter
    (fun (name, inst) ->
      let u = Instance.peak_utilization inst in
      Alcotest.(check bool) (name ^ " load < 1") true (u > 0. && u < 1.0))
    Scenarios.all

let test_uniform_load_targets () =
  List.iter
    (fun load ->
      let inst =
        Scenarios.uniform ~sources:6 ~classes_per_source:2 ~load
          ~deadline_windows:2.0
      in
      let u = Instance.peak_utilization inst in
      Alcotest.(check bool)
        (Printf.sprintf "load %.2f within 5%%" load)
        true
        (abs_float (u -. load) /. load < 0.05))
    [ 0.1; 0.3; 0.5; 0.7 ]

let test_sizes_scale () =
  let small = Scenarios.videoconference ~stations:2 in
  let large = Scenarios.videoconference ~stations:8 in
  Alcotest.(check int) "3 classes per station" 6
    (List.length (Instance.classes small));
  Alcotest.(check int) "scales" 24 (List.length (Instance.classes large))

let test_atm_uses_atm_bus () =
  let inst = Scenarios.atm_fabric ~ports:3 in
  Alcotest.(check string) "atm bus" "atm-bus"
    inst.Instance.phy.Rtnet_channel.Phy.name

let test_invalid_sizes () =
  Alcotest.check_raises "zero stations"
    (Invalid_argument "Scenarios.videoconference") (fun () ->
      ignore (Scenarios.videoconference ~stations:0))

let suite =
  [
    ( "scenarios",
      [
        Alcotest.test_case "all valid" `Quick test_all_valid;
        Alcotest.test_case "loads below capacity" `Quick
          test_loads_below_capacity;
        Alcotest.test_case "uniform hits target load" `Quick
          test_uniform_load_targets;
        Alcotest.test_case "sizes scale" `Quick test_sizes_scale;
        Alcotest.test_case "atm medium" `Quick test_atm_uses_atm_bus;
        Alcotest.test_case "invalid sizes" `Quick test_invalid_sizes;
      ] );
  ]
