module Phy = Rtnet_channel.Phy

let test_tx_bits_overhead () =
  let phy = Phy.gigabit_ethernet in
  Alcotest.(check int) "big frame gets overhead" (12_000 + 160)
    (Phy.tx_bits phy 12_000)

let test_tx_bits_min_frame () =
  let phy = Phy.gigabit_ethernet in
  Alcotest.(check int) "small frame padded to carrier extension" 4096
    (Phy.tx_bits phy 100)

let test_tx_bits_invalid () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Phy.tx_bits: non-positive length") (fun () ->
      ignore (Phy.tx_bits Phy.gigabit_ethernet 0))

let test_classic_ethernet () =
  let phy = Phy.classic_ethernet in
  Alcotest.(check int) "slot 512" 512 phy.Phy.slot_bits;
  Alcotest.(check int) "min frame" 512 (Phy.tx_bits phy 64)

let test_atm_bus () =
  let phy = Phy.atm_bus in
  Alcotest.(check int) "cell size" 424 (Phy.tx_bits phy 384);
  Alcotest.(check bool) "arbitrated" true (phy.Phy.semantics = Phy.Arbitration);
  Alcotest.(check bool) "tiny slot" true (phy.Phy.slot_bits <= 16)

let test_seconds_of_bits () =
  Alcotest.(check (float 1e-12)) "1 Gbit/s" 1e-6
    (Phy.seconds_of_bits Phy.gigabit_ethernet 1000)

let test_pp () =
  let s = Format.asprintf "%a" Phy.pp Phy.gigabit_ethernet in
  Alcotest.(check bool) "mentions name" true
    (Astring_contains.contains s "gigabit-ethernet")

let suite =
  [
    ( "phy",
      [
        Alcotest.test_case "overhead" `Quick test_tx_bits_overhead;
        Alcotest.test_case "min frame" `Quick test_tx_bits_min_frame;
        Alcotest.test_case "invalid length" `Quick test_tx_bits_invalid;
        Alcotest.test_case "classic ethernet" `Quick test_classic_ethernet;
        Alcotest.test_case "atm bus" `Quick test_atm_bus;
        Alcotest.test_case "seconds" `Quick test_seconds_of_bits;
        Alcotest.test_case "pp" `Quick test_pp;
      ] );
  ]
