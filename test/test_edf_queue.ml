module Message = Rtnet_workload.Message
module Edf_queue = Rtnet_edf.Edf_queue

let cls =
  {
    Message.cls_id = 0;
    cls_name = "c";
    cls_source = 0;
    cls_bits = 1000;
    cls_deadline = 100;
    cls_window = 1000;
    cls_burst = 1;
  }

let msg uid arrival deadline =
  { Message.uid; cls = { cls with Message.cls_deadline = deadline }; arrival }

let test_empty () =
  Alcotest.(check bool) "is_empty" true (Edf_queue.is_empty Edf_queue.empty);
  Alcotest.(check int) "size" 0 (Edf_queue.size Edf_queue.empty);
  Alcotest.(check bool) "peek" true (Edf_queue.peek Edf_queue.empty = None);
  Alcotest.(check bool) "pop" true (Edf_queue.pop Edf_queue.empty = None)

let test_edf_head () =
  let q =
    Edf_queue.of_list [ msg 1 0 500; msg 2 0 100; msg 3 0 300 ]
  in
  (match Edf_queue.peek q with
  | Some m -> Alcotest.(check int) "earliest DM first" 2 m.Message.uid
  | None -> Alcotest.fail "expected head");
  Alcotest.(check int) "size" 3 (Edf_queue.size q)

let test_pop_order () =
  let q = Edf_queue.of_list [ msg 1 0 500; msg 2 0 100; msg 3 0 300 ] in
  let order = List.map (fun m -> m.Message.uid) (Edf_queue.to_sorted_list q) in
  Alcotest.(check (list int)) "EDF order" [ 2; 3; 1 ] order

let test_insert_preserves () =
  let q = Edf_queue.of_list [ msg 1 0 500 ] in
  let q = Edf_queue.insert q (msg 2 0 50) in
  match Edf_queue.pop q with
  | Some (m, rest) ->
    Alcotest.(check int) "new min surfaces" 2 m.Message.uid;
    Alcotest.(check int) "rest" 1 (Edf_queue.size rest)
  | None -> Alcotest.fail "expected pop"

let prop_matches_sort =
  QCheck.Test.make ~name:"heap order = sorted order" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 40) (pair (int_range 0 1000) (int_range 1 1000)))
    (fun pairs ->
      let msgs = List.mapi (fun i (a, d) -> msg i a d) pairs in
      let heap_order = Edf_queue.to_sorted_list (Edf_queue.of_list msgs) in
      let sorted = List.sort Message.compare_edf msgs in
      List.map (fun m -> m.Message.uid) heap_order
      = List.map (fun m -> m.Message.uid) sorted)

let prop_persistent =
  QCheck.Test.make ~name:"queue is persistent (pop does not mutate)" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 1 1000))
    (fun deadlines ->
      let msgs = List.mapi (fun i d -> msg i 0 d) deadlines in
      let q = Edf_queue.of_list msgs in
      let before = Edf_queue.size q in
      ignore (Edf_queue.pop q);
      Edf_queue.size q = before)

let suite =
  [
    ( "edf_queue",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "edf head" `Quick test_edf_head;
        Alcotest.test_case "pop order" `Quick test_pop_order;
        Alcotest.test_case "insert" `Quick test_insert_preserves;
        QCheck_alcotest.to_alcotest prop_matches_sort;
        QCheck_alcotest.to_alcotest prop_persistent;
      ] );
  ]
