module Xi = Rtnet_core.Xi
module Xi_arb = Rtnet_core.Xi_arb
module Tree_search = Rtnet_core.Tree_search
module Multi_tree = Rtnet_core.Multi_tree
module Feasibility = Rtnet_core.Feasibility
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run
module Prng = Rtnet_util.Prng

let grid = [ (2, 4); (2, 8); (2, 16); (3, 9); (3, 27); (4, 16); (4, 64) ]

let test_base_values () =
  List.iter
    (fun (m, t) ->
      let z = Xi_arb.table ~m ~t in
      Alcotest.(check int) "zeta_0 = 1" 1 z.(0);
      Alcotest.(check int) "zeta_1 = 0" 0 z.(1);
      (* The winner is carried at the root; the survivor's subtree
         resolves free while the other m−1 probes are empty. *)
      Alcotest.(check int) (Printf.sprintf "zeta_2 = m (m=%d t=%d)" m t) m z.(2))
    grid

let test_dp_matches_reference () =
  List.iter
    (fun (m, t) ->
      let z = Xi_arb.table ~m ~t in
      for k = 0 to t do
        Alcotest.(check int)
          (Printf.sprintf "m=%d t=%d k=%d" m t k)
          (Xi_arb.of_recursion ~m ~t ~k)
          z.(k)
      done)
    [ (2, 4); (2, 8); (3, 9); (4, 16) ]

let test_low_contention_dominance () =
  (* Up to half the leaves, arbitration never costs more slots than the
     destructive search — and strictly fewer at k = 2 for deep trees. *)
  List.iter
    (fun (m, t) ->
      let z = Xi_arb.table ~m ~t and x = Xi.table ~m ~t in
      for k = 0 to t / 2 do
        if m = 2 then
          Alcotest.(check bool)
            (Printf.sprintf "zeta <= xi m=%d t=%d k=%d" m t k)
            true (z.(k) <= x.(k))
      done;
      if t > m then
        Alcotest.(check bool) "strict win at k=2" true (z.(2) < x.(2)))
    grid

let test_crossover_exists () =
  (* The honest finding: splitting after a carried winner probes
     emptied leaves, so high contention can cost MORE than the
     destructive search. *)
  let z = Xi_arb.table ~m:2 ~t:16 and x = Xi.table ~m:2 ~t:16 in
  Alcotest.(check bool) "zeta_t > xi_t for m=2 t=16" true (z.(16) > x.(16))

let prop_simulation_within_zeta =
  let arb =
    QCheck.make
      QCheck.Gen.(
        oneofl [ (2, 8); (2, 16); (4, 16); (3, 9) ] >>= fun (m, t) ->
        int_range 0 t >>= fun k ->
        int_bound 100_000 >>= fun seed -> return (m, t, k, seed))
  in
  QCheck.Test.make ~name:"arbitrated search cost <= zeta; all delivered"
    ~count:400 arb
    (fun (m, t, k, seed) ->
      let rng = Prng.create seed in
      let leaves = Array.init t Fun.id in
      Prng.shuffle rng leaves;
      let keys = Array.init k Fun.id in
      Prng.shuffle rng keys;
      let active = List.init k (fun i -> (leaves.(i), keys.(i))) in
      let cost, order = Tree_search.run_arbitrated ~m ~t ~active in
      cost <= (Xi_arb.table ~m ~t).(k) && List.length order = k)

let test_multi_tree_dp_with_zeta () =
  (* worst_exact_of specialises back to worst_exact on the xi table. *)
  let m = 2 and t = 8 in
  for v = 1 to 3 do
    for u = 2 * v to t * v do
      Alcotest.(check int)
        (Printf.sprintf "u=%d v=%d" u v)
        (Multi_tree.worst_exact ~m ~t ~u ~v)
        (Multi_tree.worst_exact_of ~xi:(Xi.table ~m ~t) ~t ~u ~v)
    done
  done;
  (* And with zeta it is computable and bounded by per-tree sums. *)
  let zeta = Xi_arb.table ~m ~t in
  let w = Multi_tree.worst_exact_of ~xi:zeta ~t ~u:8 ~v:2 in
  Alcotest.(check bool) "sane" true (w >= 0 && w <= 2 * zeta.(8))

let test_arbitrated_bound_dominates_atm_simulation () =
  (* The Section 3.2 "straightforward derivation": on the ATM fabric,
     observed worst latencies stay below the arbitrated bound. *)
  let inst = Scenarios.atm_fabric ~ports:4 in
  let params = Ddcr_params.default inst in
  let o = Ddcr.run ~seed:2 params inst ~horizon:4_000_000 in
  List.iter
    (fun (cls_id, worst) ->
      let c =
        List.find (fun c -> c.Message.cls_id = cls_id) (Instance.classes inst)
      in
      let bound = Feasibility.latency_bound_arbitrated params inst c in
      Alcotest.(check bool)
        (Printf.sprintf "class %d: %d <= %.0f" cls_id worst bound)
        true
        (float_of_int worst <= bound))
    (Run.per_class_worst_latency o);
  (* The arbitrated bound is tighter than the destructive one here
     (tiny slots, low per-class contention). *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "arb <= destructive bound" true
        (Feasibility.latency_bound_arbitrated params inst c
        <= Feasibility.latency_bound params inst c))
    (Instance.classes inst)

let test_invalid () =
  Alcotest.check_raises "bad tree"
    (Invalid_argument "Xi_arb: t must be a positive power of m, t >= m")
    (fun () -> ignore (Xi_arb.table ~m:2 ~t:12));
  Alcotest.check_raises "k range" (Invalid_argument "Xi_arb.exact: k out of [0, t]")
    (fun () -> ignore (Xi_arb.exact ~m:2 ~t:8 ~k:9));
  Alcotest.check_raises "duplicate leaves"
    (Invalid_argument "Tree_search.run_arbitrated: duplicate leaves")
    (fun () ->
      ignore (Tree_search.run_arbitrated ~m:2 ~t:4 ~active:[ (1, 0); (1, 1) ]))

let suite =
  [
    ( "xi_arb",
      [
        Alcotest.test_case "base values" `Quick test_base_values;
        Alcotest.test_case "dp = reference" `Quick test_dp_matches_reference;
        Alcotest.test_case "low-contention dominance" `Quick
          test_low_contention_dominance;
        Alcotest.test_case "crossover exists" `Quick test_crossover_exists;
        Alcotest.test_case "multi-tree DP" `Quick test_multi_tree_dp_with_zeta;
        Alcotest.test_case "ATM bound domination" `Slow
          test_arbitrated_bound_dominates_atm_simulation;
        Alcotest.test_case "invalid args" `Quick test_invalid;
        QCheck_alcotest.to_alcotest prop_simulation_within_zeta;
      ] );
  ]
