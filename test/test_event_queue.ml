module Event_queue = Rtnet_sim.Event_queue

let test_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "length" 0 (Event_queue.length q);
  Alcotest.(check (option int)) "peek" None (Event_queue.peek_time q);
  Alcotest.(check bool) "pop" true (Event_queue.pop q = None)

let test_time_order () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.add q ~time:t t) [ 5; 1; 9; 3; 7; 2 ];
  let rec drain acc =
    match Event_queue.pop q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 9 ] (drain [])

let test_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.add q ~time:4 v) [ "a"; "b"; "c" ];
  Event_queue.add q ~time:1 "first";
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "a"; "b"; "c" ] (List.rev !order)

let test_negative_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Event_queue.add: negative time") (fun () ->
      Event_queue.add q ~time:(-1) ())

let test_drain_until () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.add q ~time:t t) [ 10; 20; 30; 40 ];
  let early = Event_queue.drain_until q ~time:25 in
  Alcotest.(check (list (pair int int))) "drained" [ (10, 10); (20, 20) ] early;
  Alcotest.(check int) "rest pending" 2 (Event_queue.length q)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap sorts any input" ~count:200
    QCheck.(list (int_range 0 10000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.add q ~time:t t) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare times)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved add/pop keeps min-order" ~count:200
    QCheck.(list (int_range 0 1000))
    (fun times ->
      let q = Event_queue.create () in
      let last = ref (-1) in
      let ok = ref true in
      List.iteri
        (fun i t ->
          Event_queue.add q ~time:t t;
          if i mod 3 = 2 then
            match Event_queue.pop q with
            | Some (pt, _) ->
              (* Popped times must never go below a previously popped
                 time unless a smaller event was added afterwards; we
                 only check the heap's own invariant: pop returns the
                 current minimum. *)
              (match Event_queue.peek_time q with
              | Some nt -> if nt < pt then ok := false
              | None -> ());
              last := pt
            | None -> ok := false)
        times;
      !ok)

let suite =
  [
    ( "event_queue",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "time order" `Quick test_time_order;
        Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
        Alcotest.test_case "negative time" `Quick test_negative_time;
        Alcotest.test_case "drain_until" `Quick test_drain_until;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
        QCheck_alcotest.to_alcotest prop_interleaved;
      ] );
  ]
