module Message = Rtnet_workload.Message

let cls ?(id = 0) ?(source = 0) ?(bits = 1000) ?(deadline = 500) ?(burst = 1)
    ?(window = 1000) name =
  {
    Message.cls_id = id;
    cls_name = name;
    cls_source = source;
    cls_bits = bits;
    cls_deadline = deadline;
    cls_burst = burst;
    cls_window = window;
  }

let msg ?(uid = 0) ?(arrival = 0) c = { Message.uid; cls = c; arrival }

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (Message.cls_validate (cls "ok") = Ok ())

let expect_error c =
  match Message.cls_validate c with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

let test_validate_errors () =
  expect_error (cls ~bits:0 "bits");
  expect_error (cls ~deadline:0 "deadline");
  expect_error (cls ~burst:0 "burst");
  expect_error (cls ~window:0 "window");
  expect_error (cls ~source:(-1) "source")

let test_abs_deadline () =
  let m = msg ~arrival:100 (cls ~deadline:400 "c") in
  Alcotest.(check int) "DM = T + d" 500 (Message.abs_deadline m)

let test_edf_order () =
  let c = cls ~deadline:100 "c" in
  let early = msg ~uid:1 ~arrival:0 c in
  let late = msg ~uid:2 ~arrival:50 c in
  Alcotest.(check bool) "earlier DM first" true
    (Message.compare_edf early late < 0);
  (* Same DM: break by arrival then uid. *)
  let c2 = cls ~deadline:150 "c2" in
  let a = msg ~uid:3 ~arrival:0 c2 (* DM 150 *) in
  let b = msg ~uid:4 ~arrival:50 c (* DM 150 *) in
  Alcotest.(check bool) "arrival breaks DM tie" true
    (Message.compare_edf a b < 0);
  let x = msg ~uid:5 ~arrival:0 c2 and y = msg ~uid:6 ~arrival:0 c2 in
  Alcotest.(check bool) "uid breaks full tie" true (Message.compare_edf x y < 0)

let prop_edf_total_order =
  let arb =
    QCheck.(triple (int_range 0 20) (int_range 1 100) (int_range 0 100))
  in
  QCheck.Test.make ~name:"compare_edf is antisymmetric and transitive-ish"
    ~count:300 (QCheck.pair arb arb)
    (fun ((u1, d1, a1), (u2, d2, a2)) ->
      let m1 = msg ~uid:u1 ~arrival:a1 (cls ~deadline:d1 "x") in
      let m2 = msg ~uid:u2 ~arrival:a2 (cls ~deadline:d2 "x") in
      let c12 = Message.compare_edf m1 m2 and c21 = Message.compare_edf m2 m1 in
      if u1 = u2 && d1 = d2 && a1 = a2 then c12 = 0 && c21 = 0
      else c12 = -c21 && c12 <> 0)

let suite =
  [
    ( "message",
      [
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "validate errors" `Quick test_validate_errors;
        Alcotest.test_case "absolute deadline" `Quick test_abs_deadline;
        Alcotest.test_case "edf order" `Quick test_edf_order;
        QCheck_alcotest.to_alcotest prop_edf_total_order;
      ] );
  ]
