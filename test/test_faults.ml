(* Fault injection: channel noise destroys lone frames (full-length
   CRC-error model); protocols must stay safe and retry. *)

module Channel = Rtnet_channel.Channel
module Phy = Rtnet_channel.Phy
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Beb = Rtnet_baselines.Csma_cd_beb

let ms = 1_000_000

let attempt src bits =
  { Channel.att_source = src; att_tag = src; att_bits = bits; att_key = (0, src) }

let test_channel_always_garbles_at_rate_one () =
  let fault = { Channel.fault_rate = 1.0; fault_seed = 1 } in
  let ch = Channel.create ~fault Phy.classic_ethernet in
  let res, next = Channel.contend ch ~now:0 [ attempt 0 1000 ] in
  (match res with
  | Channel.Garbled { on_wire } ->
    Alcotest.(check int) "full frame occupied" 1160 on_wire;
    Alcotest.(check int) "medium busy" 1160 next
  | Channel.Idle | Channel.Tx _ | Channel.Clash _ ->
    Alcotest.fail "expected Garbled");
  Alcotest.(check int) "counted" 1 (Channel.stats ch).Channel.garbled_count;
  Alcotest.(check int) "nothing carried" 0 (Channel.stats ch).Channel.tx_count;
  Alcotest.(check int) "log empty" 0 (List.length (Channel.carried ch))

let test_channel_rate_zero_is_clean () =
  let fault = { Channel.fault_rate = 0.0; fault_seed = 1 } in
  let ch = Channel.create ~fault Phy.classic_ethernet in
  for i = 0 to 9 do
    let res, next = Channel.contend ch ~now:(i * 1160) [ attempt 0 1000 ] in
    ignore next;
    match res with
    | Channel.Tx _ -> ()
    | Channel.Idle | Channel.Garbled _ | Channel.Clash _ ->
      Alcotest.fail "expected Tx"
  done

let test_channel_rejects_bad_rate () =
  Alcotest.check_raises "rate"
    (Invalid_argument "Channel.create: fault_rate out of [0, 1]") (fun () ->
      ignore
        (Channel.create
           ~fault:{ Channel.fault_rate = 1.5; fault_seed = 1 }
           Phy.classic_ethernet))

let test_ddcr_survives_noise () =
  (* 20% frame loss on a lightly loaded segment: everything is still
     delivered (retries), safety and lockstep hold, and the noisy run
     is strictly slower than the clean one. *)
  let inst = Scenarios.videoconference ~stations:4 in
  let params = Ddcr_params.default inst in
  let horizon = 40 * ms in
  let trace = Instance.trace inst ~seed:5 ~horizon in
  let clean = Ddcr.run_trace ~check_lockstep:true params inst trace ~horizon in
  let fault = { Channel.fault_rate = 0.2; fault_seed = 7 } in
  let noisy =
    Ddcr.run_trace ~check_lockstep:true ~fault params inst trace ~horizon
  in
  Alcotest.(check int) "all delivered despite noise"
    (List.length clean.Run.completions)
    (List.length noisy.Run.completions);
  (match noisy.Run.channel with
  | Some st ->
    Alcotest.(check bool) "garbled frames occurred" true
      (st.Channel.garbled_count > 0)
  | None -> Alcotest.fail "expected stats");
  let worst o = (Run.metrics o).Run.worst_latency in
  Alcotest.(check bool) "noise costs latency" true (worst noisy > worst clean)

let test_ddcr_noise_deterministic () =
  let inst = Scenarios.trading ~gateways:3 in
  let params = Ddcr_params.default inst in
  let horizon = 10 * ms in
  let fault = { Channel.fault_rate = 0.1; fault_seed = 11 } in
  let key o =
    List.map (fun c -> (c.Run.c_msg.Message.uid, c.Run.c_start)) o.Run.completions
  in
  let o1 = Ddcr.run ~fault ~seed:4 params inst ~horizon in
  let o2 = Ddcr.run ~fault ~seed:4 params inst ~horizon in
  Alcotest.(check (list (pair int int))) "replayable" (key o1) (key o2)

let test_beb_survives_noise () =
  let inst = Scenarios.trading ~gateways:3 in
  let horizon = 10 * ms in
  let trace = Instance.trace inst ~seed:8 ~horizon in
  let fault = { Channel.fault_rate = 0.15; fault_seed = 3 } in
  let o = Beb.run_trace ~fault ~seed:8 inst trace ~horizon in
  Alcotest.(check int) "conservation"
    (List.length trace)
    (List.length o.Run.completions
    + List.length o.Run.unfinished
    + List.length o.Run.dropped);
  match o.Run.channel with
  | Some st ->
    Alcotest.(check bool) "garbled occurred" true (st.Channel.garbled_count > 0)
  | None -> Alcotest.fail "expected stats"

let prop_garble_rate_tracks_parameter =
  QCheck.Test.make ~name:"observed garble ratio tracks fault_rate" ~count:20
    QCheck.(pair (int_range 1 1000) (int_range 1 9))
    (fun (seed, tenths) ->
      let rate = float_of_int tenths /. 10. in
      let fault = { Channel.fault_rate = rate; fault_seed = seed } in
      let ch = Channel.create ~fault Phy.classic_ethernet in
      let n = 2000 in
      let garbled = ref 0 in
      let now = ref 0 in
      for i = 0 to n - 1 do
        let res, next = Channel.contend ch ~now:!now [ attempt (i mod 3) 1000 ] in
        (match res with
        | Channel.Garbled _ -> incr garbled
        | Channel.Idle | Channel.Tx _ | Channel.Clash _ -> ());
        now := next
      done;
      let observed = float_of_int !garbled /. float_of_int n in
      abs_float (observed -. rate) < 0.05)

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "rate 1 garbles" `Quick
          test_channel_always_garbles_at_rate_one;
        Alcotest.test_case "rate 0 clean" `Quick test_channel_rate_zero_is_clean;
        Alcotest.test_case "bad rate rejected" `Quick test_channel_rejects_bad_rate;
        Alcotest.test_case "ddcr survives noise" `Slow test_ddcr_survives_noise;
        Alcotest.test_case "noise deterministic" `Quick test_ddcr_noise_deterministic;
        Alcotest.test_case "beb survives noise" `Quick test_beb_survives_noise;
        QCheck_alcotest.to_alcotest prop_garble_rate_tracks_parameter;
      ] );
  ]
