module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Prng = Rtnet_util.Prng

let cls ?(id = 0) ?(burst = 3) ?(window = 1000) () =
  {
    Message.cls_id = id;
    cls_name = "c" ^ string_of_int id;
    cls_source = 0;
    cls_bits = 1000;
    cls_deadline = 500;
    cls_burst = burst;
    cls_window = window;
  }

let laws =
  [
    ("periodic", Arrival.Periodic { offset = 0 });
    ("periodic-offset", Arrival.Periodic { offset = 137 });
    ("sporadic", Arrival.Sporadic { mean_slack = 0.7 });
    ("greedy", Arrival.Greedy_burst);
    ("poisson", Arrival.Poisson { intensity = 2.5 });
    ("staggered", Arrival.Staggered_burst { phase = 0.4 });
    ("on-off", Arrival.On_off { on_windows = 3; off_windows = 5 });
  ]

let test_all_laws_respect_density () =
  let rng = Prng.create 1 in
  List.iter
    (fun (name, law) ->
      let c = cls () in
      let times = Arrival.generate rng c law ~horizon:50_000 in
      Alcotest.(check bool) (name ^ " respects a/w") true
        (Arrival.respects_density c times))
    laws

let test_periodic_spacing () =
  let rng = Prng.create 1 in
  let c = cls ~burst:1 ~window:100 () in
  let times = Arrival.generate rng c (Arrival.Periodic { offset = 0 }) ~horizon:1000 in
  Alcotest.(check (list int)) "every w"
    [ 0; 100; 200; 300; 400; 500; 600; 700; 800; 900 ]
    times

let test_greedy_saturates () =
  let rng = Prng.create 1 in
  let c = cls ~burst:3 ~window:100 () in
  let times = Arrival.generate rng c Arrival.Greedy_burst ~horizon:300 in
  Alcotest.(check (list int)) "a back-to-back per window"
    [ 0; 0; 0; 100; 100; 100; 200; 200; 200 ]
    times

let test_staggered_phase () =
  let rng = Prng.create 1 in
  let c = cls ~burst:2 ~window:100 () in
  let times =
    Arrival.generate rng c (Arrival.Staggered_burst { phase = 0.5 }) ~horizon:250
  in
  Alcotest.(check (list int)) "mid-window bursts" [ 50; 50; 150; 150 ] times

let test_horizon_respected () =
  let rng = Prng.create 2 in
  List.iter
    (fun (name, law) ->
      let times = Arrival.generate rng (cls ()) law ~horizon:10_000 in
      Alcotest.(check bool) (name ^ " within horizon") true
        (List.for_all (fun t -> t >= 0 && t < 10_000) times))
    laws

let test_invalid_args () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Arrival.generate: non-positive horizon") (fun () ->
      ignore (Arrival.generate rng (cls ()) Arrival.Greedy_burst ~horizon:0));
  Alcotest.check_raises "bad phase"
    (Invalid_argument "Arrival.generate: phase out of [0,1)") (fun () ->
      ignore
        (Arrival.generate rng (cls ())
           (Arrival.Staggered_burst { phase = 1.0 })
           ~horizon:100))

let test_on_off_structure () =
  let rng = Prng.create 1 in
  let c = cls ~burst:2 ~window:100 () in
  let times =
    Arrival.generate rng c
      (Arrival.On_off { on_windows = 2; off_windows = 3 })
      ~horizon:1000
  in
  (* Windows 0,1 on; 2,3,4 off; 5,6 on; 7,8,9 off. *)
  Alcotest.(check (list int)) "bursts only in on-phases"
    [ 0; 0; 100; 100; 500; 500; 600; 600 ]
    times;
  Alcotest.check_raises "bad phases"
    (Invalid_argument "Arrival.generate: on/off windows") (fun () ->
      ignore
        (Arrival.generate rng c
           (Arrival.On_off { on_windows = 0; off_windows = 1 })
           ~horizon:100))

let test_to_trace_merges () =
  let rng = Prng.create 3 in
  let c0 = cls ~id:0 ~burst:1 ~window:100 () in
  let c1 = cls ~id:1 ~burst:1 ~window:150 () in
  let trace =
    Arrival.to_trace rng
      [ (c0, Arrival.Periodic { offset = 10 }); (c1, Arrival.Periodic { offset = 0 }) ]
      ~horizon:1000
  in
  let sorted_by_time =
    List.for_all2
      (fun a b -> a.Message.arrival <= b.Message.arrival)
      (List.filteri (fun i _ -> i < List.length trace - 1) trace)
      (List.tl trace)
  in
  Alcotest.(check bool) "sorted by arrival" true sorted_by_time;
  let uids = List.map (fun m -> m.Message.uid) trace in
  Alcotest.(check (list int)) "uids sequential"
    (List.init (List.length trace) Fun.id)
    uids

let prop_density_random_laws =
  let law_gen =
    QCheck.Gen.oneofl
      [
        Arrival.Periodic { offset = 13 };
        Arrival.Sporadic { mean_slack = 1.5 };
        Arrival.Greedy_burst;
        Arrival.Poisson { intensity = 4.0 };
        Arrival.Staggered_burst { phase = 0.25 };
        Arrival.On_off { on_windows = 2; off_windows = 4 };
      ]
  in
  let arb =
    QCheck.make
      QCheck.Gen.(
        tup4 law_gen (int_range 1 5) (int_range 10 2000) (int_range 1 1000))
  in
  QCheck.Test.make ~name:"every law respects density (random classes)"
    ~count:200 arb
    (fun (law, burst, window, seed) ->
      let c = cls ~burst ~window () in
      let rng = Prng.create seed in
      let times = Arrival.generate rng c law ~horizon:(window * 20) in
      Arrival.respects_density c times)

let prop_greedy_count =
  QCheck.Test.make ~name:"greedy emits a per window" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 50 500))
    (fun (burst, window) ->
      let c = cls ~burst ~window () in
      let rng = Prng.create 1 in
      let horizon = window * 7 in
      let times = Arrival.generate rng c Arrival.Greedy_burst ~horizon in
      List.length times = burst * 7)

let suite =
  [
    ( "arrival",
      [
        Alcotest.test_case "laws respect density" `Quick
          test_all_laws_respect_density;
        Alcotest.test_case "periodic spacing" `Quick test_periodic_spacing;
        Alcotest.test_case "greedy saturates" `Quick test_greedy_saturates;
        Alcotest.test_case "staggered phase" `Quick test_staggered_phase;
        Alcotest.test_case "horizon" `Quick test_horizon_respected;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
        Alcotest.test_case "on-off structure" `Quick test_on_off_structure;
        Alcotest.test_case "to_trace merge" `Quick test_to_trace_merges;
        QCheck_alcotest.to_alcotest prop_density_random_laws;
        QCheck_alcotest.to_alcotest prop_greedy_count;
      ] );
  ]
