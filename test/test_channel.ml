module Phy = Rtnet_channel.Phy
module Channel = Rtnet_channel.Channel

let attempt ?(key = (0, 0)) src bits =
  { Channel.att_source = src; att_tag = 100 + src; att_bits = bits; att_key = key }

let test_idle () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let res, next = Channel.contend ch ~now:0 [] in
  Alcotest.(check bool) "idle" true (res = Channel.Idle);
  Alcotest.(check int) "advances one slot" 4096 next;
  Alcotest.(check int) "idle counted" 1 (Channel.stats ch).Channel.idle_slots

let test_single_tx () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let res, next = Channel.contend ch ~now:0 [ attempt 3 12_000 ] in
  (match res with
  | Channel.Tx { src; tag; on_wire } ->
    Alcotest.(check int) "src" 3 src;
    Alcotest.(check int) "tag" 103 tag;
    Alcotest.(check int) "on wire" 12_160 on_wire
  | Channel.Idle | Channel.Garbled _ | Channel.Clash _ -> Alcotest.fail "expected Tx");
  Alcotest.(check int) "busy until end of frame" 12_160 next;
  Alcotest.(check int) "tx counted" 1 (Channel.stats ch).Channel.tx_count

let test_destructive_clash () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let res, next = Channel.contend ch ~now:0 [ attempt 1 4000; attempt 2 4000 ] in
  (match res with
  | Channel.Clash { contenders; survivor } ->
    Alcotest.(check int) "two contenders" 2 (List.length contenders);
    Alcotest.(check bool) "destroyed" true (survivor = None)
  | Channel.Idle | Channel.Tx _ | Channel.Garbled _ -> Alcotest.fail "expected Clash");
  Alcotest.(check int) "one slot burned" 4096 next;
  Alcotest.(check int) "collision counted" 1
    (Channel.stats ch).Channel.collision_slots

let test_arbitrated_clash () =
  let ch = Channel.create Phy.atm_bus in
  let res, next =
    Channel.contend ch ~now:0
      [ attempt ~key:(900, 0) 1 384; attempt ~key:(100, 0) 2 384 ]
  in
  (match res with
  | Channel.Clash { survivor = Some (src, tag, on_wire); _ } ->
    Alcotest.(check int) "smallest key wins" 2 src;
    Alcotest.(check int) "its tag" 102 tag;
    Alcotest.(check int) "cell carried" 424 on_wire
  | Channel.Clash { survivor = None; _ }
  | Channel.Idle | Channel.Tx _ | Channel.Garbled _ ->
    Alcotest.fail "expected arbitrated survivor");
  Alcotest.(check int) "slot + cell" (8 + 424) next

let test_arbitration_key_tie_breaks_by_source () =
  let ch = Channel.create Phy.atm_bus in
  let res, _ =
    Channel.contend ch ~now:0
      [ attempt ~key:(100, 0) 7 384; attempt ~key:(100, 0) 3 384 ]
  in
  match res with
  | Channel.Clash { survivor = Some (src, _, _); _ } ->
    Alcotest.(check int) "lower source id wins ties" 3 src
  | Channel.Clash { survivor = None; _ }
  | Channel.Idle | Channel.Tx _ | Channel.Garbled _ ->
    Alcotest.fail "expected survivor"

let test_busy_rejected () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let _, next = Channel.contend ch ~now:0 [ attempt 1 8000 ] in
  Alcotest.check_raises "before free" (Invalid_argument "Channel.contend: channel busy")
    (fun () -> ignore (Channel.contend ch ~now:(next - 1) []));
  let res, _ = Channel.contend ch ~now:next [] in
  Alcotest.(check bool) "free again" true (res = Channel.Idle)

let test_duplicate_source_rejected () =
  let ch = Channel.create Phy.gigabit_ethernet in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Channel.contend: duplicate source in slot") (fun () ->
      ignore (Channel.contend ch ~now:0 [ attempt 1 4000; attempt 1 4000 ]))

let test_safety_log () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let _, n1 = Channel.contend ch ~now:0 [ attempt 1 8000 ] in
  let _, _ = Channel.contend ch ~now:n1 [ attempt 2 8000 ] in
  Alcotest.(check bool) "no overlap" true (Channel.check_safety ch = Ok ());
  Alcotest.(check int) "two carried" 2 (List.length (Channel.carried ch))

let test_utilization () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let _, n1 = Channel.contend ch ~now:0 [ attempt 1 12_000 ] in
  let _, _ = Channel.contend ch ~now:n1 [] in
  let u = Channel.utilization ch in
  Alcotest.(check bool) "between 0 and 1" true (u > 0.7 && u < 1.0)

let test_burst_extends_acquisition () =
  let ch = Channel.create Phy.gigabit_ethernet in
  let _, n1 = Channel.contend ch ~now:0 [ attempt 1 8000 ] in
  let on_wire, n2 = Channel.burst ch ~src:1 ~tag:7 ~bits:5000 in
  Alcotest.(check int) "second frame appended" (n1 + on_wire) n2;
  Alcotest.(check int) "both logged" 2 (List.length (Channel.carried ch));
  Alcotest.(check bool) "still safe" true (Channel.check_safety ch = Ok ());
  (* Only the holder may burst, and only until the next contention. *)
  Alcotest.check_raises "stranger"
    (Invalid_argument "Channel.burst: source does not hold the channel")
    (fun () -> ignore (Channel.burst ch ~src:2 ~tag:8 ~bits:1000));
  let _, _ = Channel.contend ch ~now:n2 [] in
  Alcotest.check_raises "after idle slot"
    (Invalid_argument "Channel.burst: source does not hold the channel")
    (fun () -> ignore (Channel.burst ch ~src:1 ~tag:9 ~bits:1000))

let prop_resolution_cases =
  QCheck.Test.make ~name:"resolution matches attempt count" ~count:300
    QCheck.(int_range 0 8)
    (fun n ->
      let ch = Channel.create Phy.classic_ethernet in
      let attempts = List.init n (fun i -> attempt i 1000) in
      let res, _ = Channel.contend ch ~now:0 attempts in
      match (n, res) with
      | 0, Channel.Idle -> true
      | 1, Channel.Tx _ -> true
      | _, Channel.Clash { contenders; _ } -> List.length contenders = n
      | (0 | 1), _ | _, (Channel.Idle | Channel.Tx _ | Channel.Garbled _) ->
        false)

let suite =
  [
    ( "channel",
      [
        Alcotest.test_case "idle" `Quick test_idle;
        Alcotest.test_case "single tx" `Quick test_single_tx;
        Alcotest.test_case "destructive clash" `Quick test_destructive_clash;
        Alcotest.test_case "arbitrated clash" `Quick test_arbitrated_clash;
        Alcotest.test_case "arbitration tie" `Quick
          test_arbitration_key_tie_breaks_by_source;
        Alcotest.test_case "busy rejected" `Quick test_busy_rejected;
        Alcotest.test_case "duplicate source" `Quick test_duplicate_source_rejected;
        Alcotest.test_case "safety log" `Quick test_safety_log;
        Alcotest.test_case "utilization" `Quick test_utilization;
        Alcotest.test_case "packet bursting" `Quick test_burst_extends_acquisition;
        QCheck_alcotest.to_alcotest prop_resolution_cases;
      ] );
  ]
