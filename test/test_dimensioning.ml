module Dimensioning = Rtnet_core.Dimensioning
module Feasibility = Rtnet_core.Feasibility
module Ddcr_params = Rtnet_core.Ddcr_params
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance

let test_easy_instance_feasible () =
  let inst = Scenarios.videoconference ~stations:6 in
  match Dimensioning.dimension inst with
  | Dimensioning.Feasible p ->
    Alcotest.(check bool) "params valid" true
      (Ddcr_params.validate p ~num_sources:inst.Instance.num_sources = Ok ());
    Alcotest.(check bool) "FC holds" true
      (Feasibility.check p inst).Feasibility.feasible
  | Dimensioning.Infeasible (_, m) ->
    Alcotest.fail (Printf.sprintf "expected feasible, margin %.3f" m)

let test_impossible_instance_reports_margin () =
  let inst =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.99
      ~deadline_windows:0.8
  in
  match Dimensioning.dimension inst with
  | Dimensioning.Feasible _ -> Alcotest.fail "cannot be feasible"
  | Dimensioning.Infeasible (p, m) ->
    Alcotest.(check bool) "margin above 1" true (m > 1.);
    Alcotest.(check (float 1e-9)) "margin is the best candidate's"
      (Dimensioning.margin p inst) m

let test_extra_indices_help () =
  (* More static indices per source reduce v(M) and hence the bound. *)
  let inst = Scenarios.trading ~gateways:4 in
  let p1 = Ddcr_params.default ~indices_per_source:1 inst in
  let p4 = Ddcr_params.default ~indices_per_source:4 inst in
  Alcotest.(check bool) "nu=4 strictly better" true
    (Dimensioning.margin p4 inst < Dimensioning.margin p1 inst)

let test_custom_candidate_grid () =
  let inst = Scenarios.videoconference ~stations:4 in
  (* A singleton grid still works and respects the candidates. *)
  (match
     Dimensioning.dimension ~time_leaf_candidates:[ 256 ]
       ~indices_candidates:[ 2 ] inst
   with
  | Dimensioning.Feasible p ->
    Alcotest.(check int) "uses the only F offered" 256 p.Ddcr_params.time_leaves
  | Dimensioning.Infeasible _ -> Alcotest.fail "easy instance");
  Alcotest.check_raises "empty grid"
    (Invalid_argument "Dimensioning.dimension: empty candidate list")
    (fun () ->
      ignore (Dimensioning.dimension ~time_leaf_candidates:[] inst))

let test_verdict_printing () =
  let inst = Scenarios.videoconference ~stations:4 in
  let v = Dimensioning.dimension inst in
  let s = Format.asprintf "%a" Dimensioning.pp_verdict v in
  Alcotest.(check bool) "mentions feasibility" true
    (Astring_contains.contains s "feasible")

let suite =
  [
    ( "dimensioning",
      [
        Alcotest.test_case "easy instance" `Quick test_easy_instance_feasible;
        Alcotest.test_case "impossible instance" `Quick
          test_impossible_instance_reports_margin;
        Alcotest.test_case "extra indices help" `Quick test_extra_indices_help;
        Alcotest.test_case "custom grid" `Quick test_custom_candidate_grid;
        Alcotest.test_case "verdict printing" `Quick test_verdict_printing;
      ] );
  ]
