module Multi_bus = Rtnet_core.Multi_bus
module Feasibility = Rtnet_core.Feasibility
module Ddcr_params = Rtnet_core.Ddcr_params
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run

let ms = 1_000_000

let test_partition_covers_all_classes () =
  let inst = Scenarios.trading ~gateways:5 in
  let a = Multi_bus.partition_exn inst ~buses:2 in
  let original_ids =
    List.sort compare
      (List.map (fun c -> c.Message.cls_id) (Instance.classes inst))
  in
  let bus_ids =
    List.sort compare
      (List.concat_map
         (fun bus -> List.map (fun c -> c.Message.cls_id) (Instance.classes bus))
         (Array.to_list a.Multi_bus.buses))
  in
  Alcotest.(check (list int)) "exact partition" original_ids bus_ids;
  Alcotest.(check int) "bus_of_class total"
    (List.length original_ids)
    (List.length a.Multi_bus.bus_of_class)

let test_partition_balances_load () =
  let inst = Scenarios.trading ~gateways:6 in
  let a = Multi_bus.partition_exn inst ~buses:2 in
  let loads =
    Array.map Instance.peak_utilization a.Multi_bus.buses
  in
  let total = Instance.peak_utilization inst in
  Alcotest.(check (float 1e-9)) "loads sum to original" total
    (Array.fold_left ( +. ) 0. loads);
  (* Worst-fit keeps the imbalance under one heaviest class. *)
  Alcotest.(check bool) "roughly balanced" true
    (abs_float (loads.(0) -. loads.(1)) < 0.6 *. total)

let test_partition_tie_break_deterministic () =
  (* Six classes of identical load: worst-fit has to break every tie.
     The documented rule — equal-load classes in ascending id, equal-
     load busses to the lowest index — pins the exact assignment, and
     it must not depend on class declaration order (topology
     fingerprints rely on partitions being pure functions of the class
     set). *)
  let cls id =
    {
      Message.cls_id = id;
      cls_name = "tie" ^ string_of_int id;
      cls_source = id mod 2;
      cls_bits = 1_000;
      cls_deadline = 60_000;
      cls_burst = 1;
      cls_window = 50_000;
    }
  in
  let mk order =
    Instance.create_exn ~name:"ties" ~phy:Rtnet_channel.Phy.classic_ethernet
      ~num_sources:2
      (List.map
         (fun i -> (cls i, Rtnet_workload.Arrival.Periodic { offset = 0 }))
         order)
  in
  let ids = [ 0; 1; 2; 3; 4; 5 ] in
  let a = Multi_bus.partition_exn (mk ids) ~buses:2 in
  let b = Multi_bus.partition_exn (mk (List.rev ids)) ~buses:2 in
  Alcotest.(check (list (pair int int)))
    "declaration-order independent"
    (List.sort compare a.Multi_bus.bus_of_class)
    (List.sort compare b.Multi_bus.bus_of_class);
  Alcotest.(check (list (pair int int)))
    "documented round-robin on all-equal loads"
    [ (0, 0); (1, 1); (2, 0); (3, 1); (4, 0); (5, 1) ]
    (List.sort compare a.Multi_bus.bus_of_class)

let test_partition_errors () =
  let inst = Scenarios.videoconference ~stations:2 (* 6 classes *) in
  (match Multi_bus.partition inst ~buses:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "buses=0 accepted");
  match Multi_bus.partition inst ~buses:7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "more buses than classes accepted"

let test_single_bus_is_identity () =
  let inst = Scenarios.videoconference ~stations:3 in
  let a = Multi_bus.partition_exn inst ~buses:1 in
  Alcotest.(check int) "one bus" 1 (Array.length a.Multi_bus.buses);
  Alcotest.(check int) "same classes"
    (List.length (Instance.classes inst))
    (List.length (Instance.classes a.Multi_bus.buses.(0)))

let test_second_bus_restores_feasibility () =
  (* An instance whose FC margin is > 1 on one bus but whose halves
     both pass: the dual-bus deployment argument of Section 5. *)
  let inst =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.5
      ~deadline_windows:1.0
  in
  let single = Feasibility.check (Ddcr_params.default inst) inst in
  Alcotest.(check bool) "single bus infeasible" false single.Feasibility.feasible;
  let dual = Multi_bus.check (Multi_bus.partition_exn inst ~buses:2) in
  Alcotest.(check bool) "dual bus feasible" true dual.Multi_bus.feasible;
  Alcotest.(check bool) "margin improved" true
    (dual.Multi_bus.worst_margin < single.Feasibility.worst_margin)

let test_run_merges_and_conserves () =
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 10 * ms in
  let a = Multi_bus.partition_exn inst ~buses:2 in
  let merged = Multi_bus.run ~check_lockstep:true ~seed:3 a ~horizon in
  (* Each bus generates its own trace from the same seed; merged
     accounting must reconcile with the per-bus traces. *)
  let expected =
    Array.fold_left
      (fun acc bus -> acc + List.length (Instance.trace bus ~seed:3 ~horizon))
      0 a.Multi_bus.buses
  in
  Alcotest.(check int) "conservation" expected
    (List.length merged.Run.completions + List.length merged.Run.unfinished);
  Alcotest.(check bool) "protocol label" true
    (merged.Run.protocol = "csma-ddcr/2-bus");
  (* Completions sorted by finish time after the merge. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Run.c_finish <= b.Run.c_finish && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "merged sorted" true (sorted merged.Run.completions)

let test_dual_bus_removes_misses () =
  (* The same overload that makes one bus miss deadlines is harmless
     when split over two. *)
  let inst =
    Instance.with_law
      (Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.85
         ~deadline_windows:2.0)
      Rtnet_workload.Arrival.Greedy_burst
  in
  let horizon = 30 * ms in
  let single =
    Run.metrics
      (Rtnet_core.Ddcr.run ~seed:5 (Ddcr_params.default inst) inst ~horizon)
  in
  let dual =
    Run.metrics
      (Multi_bus.run ~seed:5 (Multi_bus.partition_exn inst ~buses:2) ~horizon)
  in
  Alcotest.(check bool) "single bus misses" true (single.Run.deadline_misses > 0);
  Alcotest.(check int) "dual bus clean" 0 dual.Run.deadline_misses

let test_dimension_finds_minimum () =
  (* Feasible on one bus: dimension returns exactly one. *)
  let easy = Scenarios.videoconference ~stations:5 in
  (match Multi_bus.dimension easy with
  | Some (a, r) ->
    Alcotest.(check int) "one bus suffices" 1 (Array.length a.Multi_bus.buses);
    Alcotest.(check bool) "report feasible" true r.Multi_bus.feasible
  | None -> Alcotest.fail "expected feasible");
  (* Needs exactly two. *)
  let med =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.5
      ~deadline_windows:1.0
  in
  (match Multi_bus.dimension med with
  | Some (a, _) ->
    Alcotest.(check int) "two buses" 2 (Array.length a.Multi_bus.buses)
  | None -> Alcotest.fail "expected feasible with <= 4 buses");
  (* Hopeless: per-class deadline shorter than its own frame. *)
  let impossible =
    Scenarios.uniform ~sources:4 ~classes_per_source:2 ~load:0.9
      ~deadline_windows:0.005
  in
  Alcotest.(check bool) "none" true (Multi_bus.dimension impossible = None)

let test_report_printer () =
  let inst = Scenarios.videoconference ~stations:4 in
  let r = Multi_bus.check (Multi_bus.partition_exn inst ~buses:2) in
  let s = Format.asprintf "%a" Multi_bus.pp_report r in
  Alcotest.(check bool) "mentions busses" true
    (Astring_contains.contains s "bus 1")

let suite =
  [
    ( "multi_bus",
      [
        Alcotest.test_case "partition covers" `Quick test_partition_covers_all_classes;
        Alcotest.test_case "partition balances" `Quick test_partition_balances_load;
        Alcotest.test_case "partition tie-break" `Quick
          test_partition_tie_break_deterministic;
        Alcotest.test_case "partition errors" `Quick test_partition_errors;
        Alcotest.test_case "single bus identity" `Quick test_single_bus_is_identity;
        Alcotest.test_case "dual bus feasibility" `Quick
          test_second_bus_restores_feasibility;
        Alcotest.test_case "run merges" `Quick test_run_merges_and_conserves;
        Alcotest.test_case "dual bus removes misses" `Slow
          test_dual_bus_removes_misses;
        Alcotest.test_case "dimension minimum" `Quick test_dimension_finds_minimum;
        Alcotest.test_case "report printer" `Quick test_report_printer;
      ] );
  ]
