module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy
module Np_edf = Rtnet_edf.Np_edf
module Run = Rtnet_stats.Run

let phy = Phy.classic_ethernet (* l' = l + 160, min 512 *)

let cls id deadline =
  {
    Message.cls_id = id;
    cls_name = "c" ^ string_of_int id;
    cls_source = 0;
    cls_bits = 1000;
    cls_deadline = deadline;
    cls_burst = 1;
    cls_window = 10_000;
  }

let msg uid arrival deadline = { Message.uid; cls = cls uid deadline; arrival }

let test_serves_in_edf_order () =
  let trace = [ msg 0 0 9000; msg 1 0 3000; msg 2 0 6000 ] in
  let o = Np_edf.run phy trace ~horizon:100_000 in
  let order = List.map (fun c -> c.Run.c_msg.Message.uid) o.Run.completions in
  Alcotest.(check (list int)) "EDF order" [ 1; 2; 0 ] order

let test_back_to_back_service () =
  let trace = [ msg 0 0 5000; msg 1 0 6000 ] in
  let o = Np_edf.run phy trace ~horizon:100_000 in
  match o.Run.completions with
  | [ c0; c1 ] ->
    Alcotest.(check int) "first starts at arrival" 0 c0.Run.c_start;
    Alcotest.(check int) "on-wire time" 1160 (c0.Run.c_finish - c0.Run.c_start);
    Alcotest.(check int) "no gap" c0.Run.c_finish c1.Run.c_start
  | _ -> Alcotest.fail "expected two completions"

let test_non_preemptive () =
  (* A long low-priority frame starts; an urgent one arriving during
     service must wait for completion. *)
  let long_cls =
    { (cls 0 50_000) with Message.cls_bits = 10_000; cls_name = "long" }
  in
  let long = { Message.uid = 0; cls = long_cls; arrival = 0 } in
  let urgent = msg 1 100 1500 in
  let o = Np_edf.run phy [ long; urgent ] ~horizon:100_000 in
  (match o.Run.completions with
  | [ c0; c1 ] ->
    Alcotest.(check int) "long first" 0 c0.Run.c_msg.Message.uid;
    Alcotest.(check bool) "urgent waited" true (c1.Run.c_start >= c0.Run.c_finish)
  | _ -> Alcotest.fail "expected two completions");
  Alcotest.(check int) "urgent missed (blocking)" 1
    (Run.metrics o).Run.deadline_misses

let test_idle_jump () =
  let trace = [ msg 0 5_000 2000; msg 1 50_000 2000 ] in
  let o = Np_edf.run phy trace ~horizon:100_000 in
  match o.Run.completions with
  | [ c0; c1 ] ->
    Alcotest.(check int) "starts at arrival" 5_000 c0.Run.c_start;
    Alcotest.(check int) "jumps idle period" 50_000 c1.Run.c_start
  | _ -> Alcotest.fail "expected two completions"

let test_horizon_unfinished () =
  let trace = [ msg 0 0 2000; msg 1 0 9000 ] in
  (* The first frame occupies [0, 1160); service of the second may not
     start once the horizon (1100) has passed. *)
  let o = Np_edf.run phy trace ~horizon:1100 in
  Alcotest.(check int) "one finished" 1 (List.length o.Run.completions);
  Alcotest.(check int) "one unfinished" 1 (List.length o.Run.unfinished)

let test_schedulable () =
  Alcotest.(check bool) "loose deadlines" true
    (Np_edf.schedulable phy [ msg 0 0 10_000; msg 1 0 10_000 ]);
  Alcotest.(check bool) "impossible deadlines" false
    (Np_edf.schedulable phy [ msg 0 0 1200; msg 1 0 1300 ])

let prop_conservation =
  QCheck.Test.make ~name:"completions + unfinished = trace" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_range 0 50_000) (int_range 500 50_000)))
    (fun pairs ->
      let trace = List.mapi (fun i (a, d) -> msg i a d) pairs in
      let o = Np_edf.run phy trace ~horizon:60_000 in
      List.length o.Run.completions + List.length o.Run.unfinished
      = List.length trace)

let suite =
  [
    ( "np_edf",
      [
        Alcotest.test_case "edf order" `Quick test_serves_in_edf_order;
        Alcotest.test_case "back to back" `Quick test_back_to_back_service;
        Alcotest.test_case "non-preemptive" `Quick test_non_preemptive;
        Alcotest.test_case "idle jump" `Quick test_idle_jump;
        Alcotest.test_case "horizon" `Quick test_horizon_unfinished;
        Alcotest.test_case "schedulable" `Quick test_schedulable;
        QCheck_alcotest.to_alcotest prop_conservation;
      ] );
  ]
