module Json = Rtnet_util.Json
module Engine = Rtnet_sim.Engine
module Channel = Rtnet_channel.Channel
module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Sink = Rtnet_telemetry.Sink
module Registry = Rtnet_telemetry.Registry
module Trace_event = Rtnet_telemetry.Trace_event
module Headroom = Rtnet_telemetry.Headroom
module Recorder = Rtnet_telemetry.Recorder
module Spec = Rtnet_campaign.Spec
module Grid = Rtnet_campaign.Grid
module Pool = Rtnet_campaign.Pool
module Runner = Rtnet_campaign.Runner

let ms = 1_000_000

(* --- Registry --- *)

let test_registry_roundtrip () =
  let r = Registry.create () in
  Registry.incr r "a/count";
  Registry.add r "a/count" 4;
  Registry.incr r "b/count";
  Registry.set_gauge r "g" 2.5;
  Registry.max_gauge r "g" 1.0;
  Registry.add_gauge r "busy" 0.25;
  Registry.add_gauge r "busy" 0.25;
  List.iter (Registry.observe r "lat") [ 0; 1; 2; 3; 1024 ];
  Alcotest.(check int) "counter" 5 (Registry.counter_value r "a/count");
  Alcotest.(check int) "absent counter" 0 (Registry.counter_value r "nope");
  Alcotest.(check (option (float 1e-9))) "max_gauge keeps max" (Some 2.5)
    (Registry.gauge_value r "g");
  Alcotest.(check (option (float 1e-9))) "add_gauge accumulates" (Some 0.5)
    (Registry.gauge_value r "busy");
  let snap = Registry.snapshot r in
  Alcotest.(check (list (pair string int)))
    "counters sorted"
    [ ("a/count", 5); ("b/count", 1) ]
    snap.Registry.counters;
  Alcotest.(check (list (pair int int)))
    "sparse log2 buckets"
    [ (0, 2); (1, 2); (10, 1) ]
    (List.assoc "lat" snap.Registry.histograms);
  match Registry.snapshot_of_json (Registry.snapshot_to_json snap) with
  | Error e -> Alcotest.fail e
  | Ok snap' ->
    Alcotest.(check bool) "json roundtrip" true (snap = snap')

(* --- Trace-event builder and validator --- *)

let test_trace_validate_ok () =
  let t = Trace_event.create () in
  Trace_event.set_process_name t ~pid:0 "vt";
  Trace_event.set_thread_name t ~pid:0 ~tid:1 "chan";
  (* Properly nested: child shares the parent's end point. *)
  Trace_event.complete t ~pid:0 ~tid:1 ~name:"outer" ~cat:"x" ~ts:0 ~dur:10 ();
  Trace_event.complete t ~pid:0 ~tid:1 ~name:"inner" ~cat:"x" ~ts:4 ~dur:6
    ~args:[ ("headroom", Json.Float 3.0) ]
    ();
  Trace_event.instant t ~pid:0 ~tid:1 ~name:"mark" ~cat:"x" ~ts:5 ();
  (* Separate track: overlap with tid 1 is fine. *)
  Trace_event.complete t ~pid:0 ~tid:2 ~name:"other" ~cat:"x" ~ts:2 ~dur:100 ();
  match Trace_event.validate (Trace_event.to_json t) with
  | Ok n -> Alcotest.(check int) "three spans checked" 3 n
  | Error e -> Alcotest.fail e

let test_trace_validate_overlap () =
  let t = Trace_event.create () in
  Trace_event.complete t ~pid:0 ~tid:1 ~name:"a" ~cat:"x" ~ts:0 ~dur:10 ();
  Trace_event.complete t ~pid:0 ~tid:1 ~name:"b" ~cat:"x" ~ts:5 ~dur:10 ();
  match Trace_event.validate (Trace_event.to_json t) with
  | Ok _ -> Alcotest.fail "partial overlap must be rejected"
  | Error _ -> ()

let test_trace_validate_negative () =
  let bad_headroom = Trace_event.create () in
  Trace_event.complete bad_headroom ~pid:0 ~tid:1 ~name:"tx" ~cat:"x" ~ts:0
    ~dur:5
    ~args:[ ("headroom", Json.Float (-1.0)) ]
    ();
  (match Trace_event.validate (Trace_event.to_json bad_headroom) with
  | Ok _ -> Alcotest.fail "negative headroom must be rejected"
  | Error _ -> ());
  match Trace_event.validate (Json.Obj [ ("traceEvents", Json.List []) ]) with
  | Ok n -> Alcotest.(check int) "empty trace is valid" 0 n
  | Error e -> Alcotest.fail e

(* --- Recorder against a real DDCR run --- *)

let bounds_for params inst =
  List.map
    (fun cr ->
      {
        Headroom.b_cls = cr.Feasibility.cr_cls.Message.cls_id;
        b_name = cr.Feasibility.cr_cls.Message.cls_name;
        b_deadline = cr.Feasibility.cr_cls.Message.cls_deadline;
        b_bound = cr.Feasibility.cr_bound;
        b_bound_impl = cr.Feasibility.cr_bound_impl;
      })
    (Feasibility.check params inst).Feasibility.per_class

let test_recorder_end_to_end () =
  let inst = Scenarios.videoconference ~stations:4 in
  let horizon = 5 * ms in
  let trace = Instance.trace inst ~seed:11 ~horizon in
  let params = Ddcr_params.default inst in
  let bounds = bounds_for params inst in
  let r = Recorder.create ~bounds () in
  let o = Ddcr.run_trace ~sink:(Recorder.sink r) params inst trace ~horizon in
  (* Counters reconcile with the channel's own statistics. *)
  let st = Option.get o.Run.channel in
  let reg = Recorder.registry r in
  Alcotest.(check int) "tx slots" st.Channel.tx_count
    (Registry.counter_value reg "slots/tx");
  Alcotest.(check int) "idle slots" st.Channel.idle_slots
    (Registry.counter_value reg "slots/idle");
  Alcotest.(check int) "completed frames"
    (List.length o.Run.completions)
    (Registry.counter_value reg "frames/completed");
  Alcotest.(check int) "enqueued = arrivals" (List.length trace)
    (Registry.counter_value reg "queue/enqueued");
  (* Headroom: the scenario is feasible, so every class must sit below
     its implementation bound, and the observed counts must add up to
     the completions. *)
  let table = Recorder.headroom_table r in
  Alcotest.(check int) "one entry per class"
    (List.length (Instance.classes inst))
    (List.length table);
  List.iter
    (fun e ->
      if e.Headroom.e_count > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "headroom >= 0 for %s" e.Headroom.e_bound.b_name)
          true
          (Headroom.headroom e >= 0.))
    table;
  Alcotest.(check int) "headroom counts sum to completions"
    (List.length o.Run.completions)
    (List.fold_left (fun acc e -> acc + e.Headroom.e_count) 0 table);
  (* Headroom JSON roundtrip. *)
  (match Headroom.of_json (Headroom.to_json table) with
  | Error e -> Alcotest.fail e
  | Ok table' -> Alcotest.(check bool) "headroom roundtrip" true (table = table'));
  (* The exported timeline passes its own validator. *)
  match Trace_event.validate (Recorder.trace_json r) with
  | Ok n -> Alcotest.(check bool) "trace has spans" true (n > 0)
  | Error e -> Alcotest.fail e

(* The null sink must not change what the simulation computes. *)
let test_null_sink_transparent () =
  let inst = Scenarios.trading ~gateways:3 in
  let horizon = 5 * ms in
  let trace = Instance.trace inst ~seed:3 ~horizon in
  let params = Ddcr_params.default inst in
  let plain = Run.metrics (Ddcr.run_trace params inst trace ~horizon) in
  let recorded =
    let r = Recorder.create () in
    Run.metrics
      (Ddcr.run_trace ~sink:(Recorder.sink r) params inst trace ~horizon)
  in
  let null =
    Run.metrics (Ddcr.run_trace ~sink:Sink.null params inst trace ~horizon)
  in
  Alcotest.(check bool) "recording sink is an observer" true (plain = recorded);
  Alcotest.(check bool) "null sink is an observer" true (plain = null)

(* --- Engine probe --- *)

let test_engine_on_step () =
  let steps = ref 0 in
  let last = ref (-1) in
  let eng =
    Engine.create
      ~on_step:(fun ~time ->
        incr steps;
        last := time)
      ()
  in
  List.iter
    (fun t -> Engine.schedule_at eng ~time:t (fun _ -> ()))
    [ 7; 3; 11 ];
  Engine.run eng;
  Alcotest.(check int) "one probe per event" (Engine.events_processed eng)
    !steps;
  Alcotest.(check int) "three events" 3 !steps;
  Alcotest.(check int) "probe sees dispatch time" 11 !last

(* --- Pool timing --- *)

let test_pool_timing () =
  let timings = ref [] in
  let n =
    Pool.map ~jobs:2
      ~on_event:(fun ev ->
        match ev with
        | Pool.Result (i, tm, v) ->
          Alcotest.(check int) "value" (i * i) v;
          timings := tm :: !timings
        | Pool.Failed (_, _, msg) -> Alcotest.fail msg)
      (fun i -> i * i)
      (Array.init 6 Fun.id)
  in
  Alcotest.(check int) "all cells" 6 n;
  Alcotest.(check int) "one timing per cell" 6 (List.length !timings);
  List.iter
    (fun tm ->
      Alcotest.(check bool) "worker id in range" true
        (tm.Pool.worker >= 0 && tm.Pool.worker < 2);
      Alcotest.(check bool) "t1 >= t0" true (tm.Pool.t1 >= tm.Pool.t0))
    !timings

(* --- Runner failure ordering --- *)

let test_order_failures () =
  Alcotest.(check (list string))
    "sorted by submission position"
    [ "a"; "c"; "d" ]
    (Runner.order_failures [ (3, "d"); (0, "a"); (2, "c") ]);
  Alcotest.(check (list string)) "empty" [] (Runner.order_failures [])

(* --- Grid cells with telemetry --- *)

let test_grid_telemetry () =
  let spec = Option.get (Spec.find_builtin "smoke") in
  let cells = Array.to_list (Grid.cells spec) in
  let ddcr_cell =
    List.find (fun c -> c.Grid.protocol = Spec.Ddcr) cells
  in
  let baseline_cell =
    List.find (fun c -> c.Grid.protocol <> Spec.Ddcr) cells
  in
  (* Off by default: no telemetry key in the serialized result. *)
  let off = Grid.run_cell spec ddcr_cell in
  Alcotest.(check bool) "absent when off" true (off.Grid.r_telemetry = None);
  (match Grid.result_to_json off with
  | Json.Obj fields ->
    Alcotest.(check bool) "no telemetry key when off" false
      (List.mem_assoc "telemetry" fields)
  | _ -> Alcotest.fail "result_to_json not an object");
  (* On: DDCR cells get a snapshot, baselines never do. *)
  let on = Grid.run_cell ~telemetry:true spec ddcr_cell in
  Alcotest.(check bool) "present for ddcr" true (on.Grid.r_telemetry <> None);
  let base = Grid.run_cell ~telemetry:true spec baseline_cell in
  Alcotest.(check bool) "absent for baselines" true
    (base.Grid.r_telemetry = None);
  (* Roundtrip preserves the snapshot and the metrics. *)
  match Grid.result_of_json (Grid.result_to_json on) with
  | Error e -> Alcotest.fail e
  | Ok on' ->
    Alcotest.(check bool) "metrics roundtrip" true
      (on.Grid.r_metrics = on'.Grid.r_metrics);
    Alcotest.(check bool) "telemetry roundtrip" true
      (on.Grid.r_telemetry = on'.Grid.r_telemetry)

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "registry roundtrip" `Quick test_registry_roundtrip;
        Alcotest.test_case "trace validate ok" `Quick test_trace_validate_ok;
        Alcotest.test_case "trace validate overlap" `Quick
          test_trace_validate_overlap;
        Alcotest.test_case "trace validate negative" `Quick
          test_trace_validate_negative;
        Alcotest.test_case "recorder end to end" `Quick
          test_recorder_end_to_end;
        Alcotest.test_case "null sink transparent" `Quick
          test_null_sink_transparent;
        Alcotest.test_case "engine on_step" `Quick test_engine_on_step;
        Alcotest.test_case "pool timing" `Quick test_pool_timing;
        Alcotest.test_case "order failures" `Quick test_order_failures;
        Alcotest.test_case "grid telemetry" `Quick test_grid_telemetry;
      ] );
  ]
