module Feasibility = Rtnet_core.Feasibility
module Ddcr_params = Rtnet_core.Ddcr_params
module Xi = Rtnet_core.Xi
module Multi_tree = Rtnet_core.Multi_tree
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Phy = Rtnet_channel.Phy
module Scenarios = Rtnet_workload.Scenarios

(* A small instance with hand-computable bounds.

   Medium: classic Ethernet (slot 512, overhead 160, min frame 512).
   Two sources; three classes:
     A: src 0, l = 2000 (l' = 2160), d = 200_000, a/w = 1/50_000
     B: src 0, l = 1000 (l' = 1160), d = 100_000, a/w = 2/100_000
     C: src 1, l = 4000 (l' = 4160), d = 300_000, a/w = 1/100_000 *)
let phy = Phy.classic_ethernet

let cls_a =
  {
    Message.cls_id = 0;
    cls_name = "A";
    cls_source = 0;
    cls_bits = 2000;
    cls_deadline = 200_000;
    cls_burst = 1;
    cls_window = 50_000;
  }

let cls_b =
  {
    Message.cls_id = 1;
    cls_name = "B";
    cls_source = 0;
    cls_bits = 1000;
    cls_deadline = 100_000;
    cls_burst = 2;
    cls_window = 100_000;
  }

let cls_c =
  {
    Message.cls_id = 2;
    cls_name = "C";
    cls_source = 1;
    cls_bits = 4000;
    cls_deadline = 300_000;
    cls_burst = 1;
    cls_window = 100_000;
  }

let law = Arrival.Periodic { offset = 0 }

let inst =
  Instance.create_exn ~name:"hand" ~phy ~num_sources:2
    [ (cls_a, law); (cls_b, law); (cls_c, law) ]

let params = Ddcr_params.default inst

let test_rank_bound_hand_computed () =
  (* r(A) = ⌈200000/50000⌉·1 + ⌈200000/100000⌉·2 − 1 = 4 + 4 − 1 = 7 *)
  Alcotest.(check int) "r(A)" 7 (Feasibility.rank_bound inst cls_a);
  (* r(B) = ⌈100000/50000⌉·1 + ⌈100000/100000⌉·2 − 1 = 2 + 2 − 1 = 3 *)
  Alcotest.(check int) "r(B)" 3 (Feasibility.rank_bound inst cls_b);
  (* r(C) = ⌈300000/100000⌉·1 − 1 = 2 (source 1 owns only C) *)
  Alcotest.(check int) "r(C)" 2 (Feasibility.rank_bound inst cls_c)

let test_interference_bound_hand_computed () =
  (* l'(A) = 2160.
     u(A) = ⌈(200000+200000−2160)/50000⌉·1
          + ⌈(200000+100000−2160)/100000⌉·2
          + ⌈(200000+300000−2160)/100000⌉·1
          = 8 + 6 + 5 = 19 *)
  Alcotest.(check int) "u(A)" 19 (Feasibility.interference_bound inst cls_a);
  (* l'(B) = 1160.
     u(B) = ⌈(100000+200000−1160)/50000⌉ + ⌈(100000+100000−1160)/100000⌉·2
          + ⌈(100000+300000−1160)/100000⌉ = 6 + 4 + 4 = 14 *)
  Alcotest.(check int) "u(B)" 14 (Feasibility.interference_bound inst cls_b)

let test_static_trees_bound () =
  (* v(M) = 1 + ⌊r(M)/ν_i⌋ with the ν the allocation actually grants. *)
  let nu0 = Ddcr_params.nu params 0 and nu1 = Ddcr_params.nu params 1 in
  Alcotest.(check int) "v(A)" (1 + (7 / nu0))
    (Feasibility.static_trees_bound params inst cls_a);
  Alcotest.(check int) "v(C)" (1 + (2 / nu1))
    (Feasibility.static_trees_bound params inst cls_c);
  let params4 = Ddcr_params.default ~indices_per_source:4 inst in
  let nu4 = Ddcr_params.nu params4 0 in
  Alcotest.(check bool) "at least the requested indices" true (nu4 >= 4);
  Alcotest.(check int) "v(A) with bigger nu" (1 + (7 / nu4))
    (Feasibility.static_trees_bound params4 inst cls_a)

let test_latency_bound_structure () =
  (* B = Σ counts·l' + x·(S1 + S2), assembled from the same pieces. *)
  let u = Feasibility.interference_bound inst cls_a in
  let v = Feasibility.static_trees_bound params inst cls_a in
  let s1 =
    Multi_tree.bound ~m:params.Ddcr_params.static_m
      ~t:params.Ddcr_params.static_leaves ~u ~v
  in
  let s2 =
    float_of_int
      (Rtnet_util.Int_math.cdiv v 2
      * Xi.eq5 ~m:params.Ddcr_params.time_m ~t:params.Ddcr_params.time_leaves)
  in
  Alcotest.(check (float 1e-6)) "S = S1 + S2" (s1 +. s2)
    (Feasibility.search_slot_bound params inst cls_a);
  let tx_time = (8 * 2160) + (6 * 1160) + (5 * 4160) in
  Alcotest.(check (float 1e-6)) "B assembled"
    (float_of_int tx_time +. (512. *. (s1 +. s2)))
    (Feasibility.latency_bound params inst cls_a)

let test_impl_bound_exceeds_paper_bound () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "impl > paper" true
        (Feasibility.latency_bound_impl params inst c
        > Feasibility.latency_bound params inst c))
    (Instance.classes inst)

let test_report_consistency () =
  let r = Feasibility.check params inst in
  Alcotest.(check int) "one row per class" 3 (List.length r.Feasibility.per_class);
  let recomputed =
    List.for_all
      (fun cr ->
        cr.Feasibility.cr_feasible
        = (cr.Feasibility.cr_bound
          <= float_of_int cr.Feasibility.cr_cls.Message.cls_deadline))
      r.Feasibility.per_class
  in
  Alcotest.(check bool) "per-class verdicts" true recomputed;
  Alcotest.(check bool) "global = conjunction" true
    (r.Feasibility.feasible
    = List.for_all (fun cr -> cr.Feasibility.cr_feasible) r.Feasibility.per_class)

let test_margin_improves_with_lower_density () =
  (* Stretching every arrival window divides the offered load: all
     interference counts shrink while deadlines stay fixed, so the
     worst margin must strictly improve (the default parameters are
     unaffected — they depend on deadlines and tree sizes only). *)
  let r1 = Feasibility.check params inst in
  let sparse = Instance.scale_windows inst 4.0 in
  let r2 = Feasibility.check params sparse in
  Alcotest.(check bool) "margin shrinks" true
    (r2.Feasibility.worst_margin < r1.Feasibility.worst_margin)

let test_overload_infeasible () =
  let over =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.98
      ~deadline_windows:1.0
  in
  let p = Ddcr_params.default over in
  Alcotest.(check bool) "nearly saturated + tight deadlines infeasible" false
    (Feasibility.check p over).Feasibility.feasible

let test_foreign_class_rejected () =
  let foreign = { cls_a with Message.cls_id = 99 } in
  Alcotest.check_raises "foreign"
    (Invalid_argument "Feasibility: class does not belong to the instance")
    (fun () -> ignore (Feasibility.rank_bound inst foreign))

let prop_u_at_least_r =
  (* u counts all sources' messages including everything r counts plus
     M itself, so u >= r + 1 whenever l'(M) <= d(m) terms align; we
     check on randomized two-class instances. *)
  let arb =
    QCheck.make
      QCheck.Gen.(
        tup4 (int_range 1 4) (int_range 10_000 500_000)
          (int_range 10_000 500_000) (int_range 1000 8000))
  in
  QCheck.Test.make ~name:"u(M) >= r(M) + 1" ~count:200 arb
    (fun (burst, w, d, bits) ->
      let c0 =
        {
          Message.cls_id = 0;
          cls_name = "x";
          cls_source = 0;
          cls_bits = bits;
          cls_deadline = d;
          cls_burst = burst;
          cls_window = w;
        }
      in
      let c1 = { c0 with Message.cls_id = 1; cls_source = 1 } in
      let i2 =
        Instance.create_exn ~name:"p" ~phy ~num_sources:2
          [ (c0, law); (c1, law) ]
      in
      Feasibility.interference_bound i2 c0
      >= Feasibility.rank_bound i2 c0 + 1)

let suite =
  [
    ( "feasibility",
      [
        Alcotest.test_case "r(M) hand computed" `Quick test_rank_bound_hand_computed;
        Alcotest.test_case "u(M) hand computed" `Quick
          test_interference_bound_hand_computed;
        Alcotest.test_case "v(M)" `Quick test_static_trees_bound;
        Alcotest.test_case "B structure" `Quick test_latency_bound_structure;
        Alcotest.test_case "impl bound dominates" `Quick
          test_impl_bound_exceeds_paper_bound;
        Alcotest.test_case "report consistency" `Quick test_report_consistency;
        Alcotest.test_case "margin vs density" `Quick
          test_margin_improves_with_lower_density;
        Alcotest.test_case "overload infeasible" `Quick test_overload_infeasible;
        Alcotest.test_case "foreign class" `Quick test_foreign_class_rejected;
        QCheck_alcotest.to_alcotest prop_u_at_least_r;
      ] );
  ]
