(* Quickstart: define an HRTDM instance, check its feasibility
   conditions, and simulate CSMA/DDCR on it.

   Run with: dune exec examples/quickstart.exe *)

module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Instance = Rtnet_workload.Instance
module Phy = Rtnet_channel.Phy
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Run = Rtnet_stats.Run

let ms = 1_000_000 (* 1 ms = 1e6 bit-times on Gigabit Ethernet *)

let () =
  (* 1. Describe the message set <m.HRTDM>: three sources sharing one
     half-duplex Gigabit Ethernet segment.  Every class declares its
     bit length l, hard relative deadline d, and arrival-density bound
     a/w ("at most a arrivals in any window of w"). *)
  let sensor =
    {
      Message.cls_id = 0;
      cls_name = "sensor";
      cls_source = 0;
      cls_bits = 4_000;
      cls_deadline = 2 * ms;
      cls_burst = 1;
      cls_window = 5 * ms;
    }
  in
  let control =
    {
      Message.cls_id = 1;
      cls_name = "control";
      cls_source = 1;
      cls_bits = 2_000;
      cls_deadline = 1 * ms;
      cls_burst = 2;
      cls_window = 10 * ms;
    }
  in
  let log =
    {
      Message.cls_id = 2;
      cls_name = "log";
      cls_source = 2;
      cls_bits = 12_000;
      cls_deadline = 20 * ms;
      cls_burst = 1;
      cls_window = 10 * ms;
    }
  in
  let inst =
    Instance.create_exn ~name:"quickstart" ~phy:Phy.gigabit_ethernet
      ~num_sources:3
      [
        (sensor, Arrival.Periodic { offset = 0 });
        (control, Arrival.Greedy_burst);
        (log, Arrival.Sporadic { mean_slack = 1.0 });
      ]
  in
  Format.printf "%a@." Instance.pp inst;

  (* 2. Derive protocol parameters and check the feasibility
     conditions of Section 4.3: the instance is provably schedulable
     iff B_DDCR(M) <= d(M) for every class. *)
  let params = Ddcr_params.default inst in
  Format.printf "@.parameters: %a@.@." Ddcr_params.pp params;
  let report = Feasibility.check params inst in
  Format.printf "%a@.@." Feasibility.pp_report report;

  (* 3. Simulate 100 ms of the network and confirm the proof holds in
     the implementation: zero deadline misses, mutual exclusion
     enforced by the channel, all sources in lockstep. *)
  let outcome = Ddcr.run ~check_lockstep:true ~seed:7 params inst ~horizon:(100 * ms) in
  let metrics = Run.metrics outcome in
  Format.printf "simulated 100 ms: %a@." Run.pp_metrics metrics;
  List.iter
    (fun (cls_id, worst) ->
      let c = List.find (fun c -> c.Message.cls_id = cls_id) (Instance.classes inst) in
      Format.printf "  %-8s worst observed %7d bit-times  vs bound %10.0f@."
        c.Message.cls_name worst
        (Feasibility.latency_bound params inst c))
    (Run.per_class_worst_latency outcome);
  if report.Feasibility.feasible && metrics.Run.deadline_misses = 0 then
    print_endline "\nfeasible by the FCs, and the simulation agrees."
