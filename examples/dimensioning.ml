(* Network dimensioning with the feasibility conditions.

   Section 2.2: "FCs are an essential tool for an end user or a
   technology provider who has to assign numerical values to message
   lengths, to upper bounds of message arrival densities and to message
   deadlines."  This example walks that workflow:

   1. sweep offered load and find where an instance stops being
      provably feasible;
   2. show how protocol dimensioning (static indices per source,
      time-tree size) moves that boundary;
   3. print the configuration chosen by the automatic search.

   Run with: dune exec examples/dimensioning.exe *)

module Scenarios = Rtnet_workload.Scenarios
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Dimensioning = Rtnet_core.Dimensioning
module Table = Rtnet_util.Table

let () =
  (* 1. Feasibility margin vs offered load (margin = worst B/d; <= 1
     means provably schedulable). *)
  print_endline "margin (worst B_DDCR/d) vs offered load, 8 sources:";
  let tbl = Table.create [ "load"; "nu=1"; "nu=2"; "nu=4"; "nu=4, F=256" ] in
  List.iter
    (fun load ->
      let inst =
        Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load
          ~deadline_windows:2.0
      in
      let margin p = Printf.sprintf "%.3f" (Dimensioning.margin p inst) in
      Table.add_row tbl
        [
          Printf.sprintf "%.2f" load;
          margin (Ddcr_params.default ~indices_per_source:1 inst);
          margin (Ddcr_params.default ~indices_per_source:2 inst);
          margin (Ddcr_params.default ~indices_per_source:4 inst);
          margin
            (Ddcr_params.default ~indices_per_source:4 ~time_leaves:256 inst);
        ])
    [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ];
  Table.print tbl;
  print_endline
    "(more static indices per source shrink v(M), the number of static\n\
     tree searches a message can wait through — the dominant term)";

  (* 2. The automatic search over the candidate grid. *)
  List.iter
    (fun load ->
      let inst =
        Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load
          ~deadline_windows:2.0
      in
      Format.printf "@.load %.2f: %a@." load Dimensioning.pp_verdict
        (Dimensioning.dimension inst))
    [ 0.2; 0.5 ];

  (* 3. Full per-class report for one dimensioned configuration. *)
  let inst =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.3
      ~deadline_windows:2.0
  in
  (match Dimensioning.dimension inst with
  | Dimensioning.Feasible p ->
    Format.printf "@.%a@." Feasibility.pp_report (Feasibility.check p inst)
  | Dimensioning.Infeasible (p, m) ->
    Format.printf "@.best margin %.3f with %a@." m Ddcr_params.pp p)
