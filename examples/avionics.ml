(* Modular avionics on a deterministic Ethernet — the application
   domain through which the TRDF method (Section 2.1) was originally
   exercised (French DARPA / Dassault Aviation).

   A flight-control segment carries harmonic periodic traffic (attitude
   sensors, actuator commands) plus sporadic pilot/alarm events.  The
   engineering question the feasibility conditions answer: can every
   message provably meet its deadline, including under the worst
   arrival pattern the density bounds admit?

   Run with: dune exec examples/avionics.exe *)

module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Instance = Rtnet_workload.Instance
module Phy = Rtnet_channel.Phy
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Dimensioning = Rtnet_core.Dimensioning
module Run = Rtnet_stats.Run
module Table = Rtnet_util.Table

let us = 1_000
let ms = 1_000_000

let cls ~id ~name ~source ~bits ~deadline ~burst ~window =
  {
    Message.cls_id = id;
    cls_name = name;
    cls_source = source;
    cls_bits = bits;
    cls_deadline = deadline;
    cls_burst = burst;
    cls_window = window;
  }

(* Four flight-control computers plus one IO concentrator. *)
let instance =
  let fcc i =
    [
      ( cls ~id:(4 * i) ~name:(Printf.sprintf "attitude%d" i) ~source:i
          ~bits:1_600 ~deadline:(500 * us) ~burst:1 ~window:(2500 * us),
        Arrival.Periodic { offset = i * 50 * us } );
      ( cls ~id:(4 * i + 1) ~name:(Printf.sprintf "actuator%d" i) ~source:i
          ~bits:2_400 ~deadline:(1 * ms) ~burst:1 ~window:(5 * ms),
        Arrival.Periodic { offset = (i * 50 * us) + (200 * us) } );
      ( cls ~id:(4 * i + 2) ~name:(Printf.sprintf "health%d" i) ~source:i
          ~bits:6_400 ~deadline:(10 * ms) ~burst:1 ~window:(25 * ms),
        Arrival.Sporadic { mean_slack = 0.5 } );
      ( cls ~id:(4 * i + 3) ~name:(Printf.sprintf "alarm%d" i) ~source:i
          ~bits:800 ~deadline:(2 * ms) ~burst:2 ~window:(50 * ms),
        Arrival.Poisson { intensity = 0.2 } );
    ]
  in
  let io =
    ( cls ~id:16 ~name:"io-frame" ~source:4 ~bits:9_600 ~deadline:(5 * ms)
        ~burst:1 ~window:(5 * ms),
      Arrival.Periodic { offset = 333 * us } )
  in
  Instance.create_exn ~name:"avionics" ~phy:Phy.gigabit_ethernet ~num_sources:5
    (io :: List.concat_map fcc [ 0; 1; 2; 3 ])

let () =
  Format.printf "%a@." Instance.pp instance;

  (* Dimension the protocol from the FCs rather than guessing. *)
  let params =
    match Dimensioning.dimension instance with
    | Dimensioning.Feasible p -> p
    | Dimensioning.Infeasible (p, m) ->
      Format.printf "not provably feasible (margin %.3f), using best candidate@." m;
      p
  in
  Format.printf "@.dimensioned: %a@.@." Ddcr_params.pp params;
  Format.printf "%a@.@." Feasibility.pp_report (Feasibility.check params instance);

  (* Certification-style evidence: run the peak-load adversary (every
     density bound saturated) and compare observed worst latencies with
     the proved bounds. *)
  let adversary = Instance.with_law instance Arrival.Greedy_burst in
  let outcome = Ddcr.run ~check_lockstep:true ~seed:2 params adversary ~horizon:(100 * ms) in
  let tbl = Table.create [ "class"; "worst observed (us)"; "B_DDCR (us)"; "headroom" ] in
  List.iter
    (fun (cls_id, worst) ->
      let c =
        List.find (fun c -> c.Message.cls_id = cls_id) (Instance.classes adversary)
      in
      let bound = Feasibility.latency_bound params adversary c in
      Table.add_row tbl
        [
          c.Message.cls_name;
          Printf.sprintf "%.1f" (float_of_int worst /. 1000.);
          Printf.sprintf "%.1f" (bound /. 1000.);
          Printf.sprintf "%.1fx" (bound /. float_of_int worst);
        ])
    (Run.per_class_worst_latency outcome);
  Table.print tbl;
  Format.printf "@.under peak load: %a@." Run.pp_metrics (Run.metrics outcome)
