(* On-line transaction traffic (Section 2.1's stock-market example):
   bursty order flow with sub-millisecond deadlines, compared across
   every protocol in the library on one identical arrival trace.

   This is the workload class where the difference between a
   probabilistic MAC (CSMA-CD/BEB), a deterministic but deadline-blind
   MAC (CSMA/DCR, TDMA) and deadline-driven resolution (CSMA/DDCR)
   shows up in the tail.

   Run with: dune exec examples/trading.exe *)

module Instance = Rtnet_workload.Instance
module Scenarios = Rtnet_workload.Scenarios
module Run = Rtnet_stats.Run
module Table = Rtnet_util.Table
module Summary = Rtnet_stats.Summary
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Beb = Rtnet_baselines.Csma_cd_beb
module Dcr = Rtnet_baselines.Csma_dcr
module Tdma = Rtnet_baselines.Tdma
module Np_edf = Rtnet_edf.Np_edf

let ms = 1_000_000

let () =
  let inst = Scenarios.trading ~gateways:6 in
  Format.printf "%a@." Instance.pp inst;
  let horizon = 50 * ms in
  let trace = Instance.trace inst ~seed:2024 ~horizon in
  Format.printf "@.one trace, %d messages, every protocol:@.@."
    (List.length trace);
  let params = Ddcr_params.default inst in
  (* Orders are ~4-kbit frames on a medium whose contention slot is
     4096 bit-times: every collision slot costs as much as a frame, the
     regime Section 5's packet bursting (802.3z) addresses — include a
     bursting configuration alongside plain CSMA/DDCR. *)
  let bursting = Ddcr_params.with_burst params 65_536 in
  let relabel name o = { o with Run.protocol = name } in
  let runs =
    [
      Ddcr.run_trace params inst trace ~horizon;
      relabel "csma-ddcr+burst" (Ddcr.run_trace bursting inst trace ~horizon);
      Beb.run_trace ~seed:2024 inst trace ~horizon;
      Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon;
      Tdma.run_trace inst trace ~horizon;
      Np_edf.run inst.Instance.phy trace ~horizon;
    ]
  in
  let tbl =
    Table.create
      [
        "protocol"; "delivered"; "misses"; "p50 (us)"; "p99 (us)"; "max (us)";
        "inversions"; "util";
      ]
  in
  List.iter
    (fun o ->
      let m = Run.metrics o in
      let lat = List.map Run.latency o.Run.completions in
      let s = Summary.of_list_exn lat in
      let us v = Printf.sprintf "%.1f" (float_of_int v /. 1000.) in
      Table.add_row tbl
        [
          o.Run.protocol;
          string_of_int m.Run.delivered;
          string_of_int m.Run.deadline_misses;
          us s.Summary.p50;
          us s.Summary.p99;
          us s.Summary.max;
          string_of_int m.Run.inversions;
          Printf.sprintf "%.3f" m.Run.utilization;
        ])
    runs;
  Table.print tbl;
  print_endline
    "\nthe oracle is the floor; CSMA/DDCR tracks it with a bounded tail,\n\
     while BEB's randomized backoff grows an unbounded p99/max and the\n\
     deadline-blind deterministic protocols invert urgent messages."
