(* Anatomy of a CSMA/DDCR collision resolution, slot by slot.

   A deliberately tiny network — three sources whose messages land in
   different deadline classes plus a same-class tie — so the full
   protocol trace fits on a screen: the initiating collision, the time
   tree search walking the deadline classes, the static tree search
   breaking the tie, and the open attempt slot closing the epoch.

   Run with: dune exec examples/anatomy.exe *)

module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Instance = Rtnet_workload.Instance
module Phy = Rtnet_channel.Phy
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Run = Rtnet_stats.Run

let () =
  (* Three sources on classic 10 Mb/s Ethernet (512-bit slot, easy
     numbers).  Sources 0 and 1 share a deadline class (the tie the
     static tree must break); source 2 is one class later. *)
  let cls id src d =
    {
      Message.cls_id = id;
      cls_name = Printf.sprintf "m%d" id;
      cls_source = src;
      cls_bits = 1000;
      cls_deadline = d;
      cls_burst = 1;
      cls_window = 400_000;
    }
  in
  let inst =
    Instance.create_exn ~name:"anatomy" ~phy:Phy.classic_ethernet
      ~num_sources:3
      [
        (cls 0 0 20_000, Arrival.Periodic { offset = 0 });
        (cls 1 1 20_400, Arrival.Periodic { offset = 0 });
        (cls 2 2 50_000, Arrival.Periodic { offset = 0 });
      ]
  in
  let params =
    {
      Ddcr_params.time_m = 2;
      time_leaves = 16;
      class_width = 4_000;
      alpha = 0;
      theta = 0;
      static_m = 2;
      static_leaves = 4;
      static_indices = [| [| 0 |]; [| 1 |]; [| 2 |] |];
      burst_bits = 0;
    }
  in
  Format.printf "%a@.parameters: %a@.@." Instance.pp inst Ddcr_params.pp params;
  let record, finish = Ddcr_trace.collector () in
  let outcome =
    Ddcr.run ~check_lockstep:true ~on_event:record ~seed:1 params inst
      ~horizon:8_500
  in
  print_endline "protocol trace (one line per slot / transition):";
  List.iter (fun e -> Format.printf "  %a@." Ddcr_trace.pp_event e) (finish ());
  Format.printf "@.%a@.@." Run.pp_metrics (Run.metrics outcome);
  print_endline
    "reading guide: the three simultaneous arrivals collide; the time\n\
     tree search walks the empty early classes, isolates nothing until\n\
     the class holding m0 and m1 collides on its leaf; the static tree\n\
     search transmits both in index order; m2's later class then\n\
     resolves with a plain transmission; the open attempt slot falls\n\
     silent and the channel returns to free CSMA-CD."
