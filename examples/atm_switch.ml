(* CSMA/DDCR on a bus internal to an ATM switch (Section 3.2 / 5).

   The medium differs from Ethernet in two ways the paper highlights:
   the slot time shrinks to a few bit times (small physical span), and
   an exclusive-OR wired logic makes collisions non-destructive — the
   cell with the smallest (deadline, index) key survives the collision
   window.  The same protocol runs unchanged; only the channel model
   differs, and throughput under contention improves accordingly.

   Run with: dune exec examples/atm_switch.exe *)

module Instance = Rtnet_workload.Instance
module Scenarios = Rtnet_workload.Scenarios
module Phy = Rtnet_channel.Phy
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Run = Rtnet_stats.Run
module Table = Rtnet_util.Table

let ms = 1_000_000

let () =
  let ports = 8 in
  let inst = Scenarios.atm_fabric ~ports in
  Format.printf "%a@." Instance.pp inst;

  (* Compare the two collision semantics on the identical cell
     workload: the XOR bus (arbitrated) vs a hypothetical destructive
     backplane. *)
  let destructive =
    Instance.create_exn ~name:"atm-destructive"
      ~phy:{ inst.Instance.phy with Phy.semantics = Phy.Destructive }
      ~num_sources:ports
      (Array.to_list inst.Instance.classes)
  in
  let tbl =
    Table.create
      [ "bus logic"; "cells"; "misses"; "worst (cell times)"; "mean"; "util" ]
  in
  let cell = 424 in
  List.iter
    (fun (label, i) ->
      let params = Ddcr_params.default ~indices_per_source:2 i in
      let o = Ddcr.run ~seed:5 params i ~horizon:(8 * ms) in
      let m = Run.metrics o in
      Table.add_row tbl
        [
          label;
          string_of_int m.Run.delivered;
          string_of_int m.Run.deadline_misses;
          Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. float_of_int cell);
          Printf.sprintf "%.1f" (m.Run.mean_latency /. float_of_int cell);
          Printf.sprintf "%.3f" m.Run.utilization;
        ])
    [ ("wired-XOR (arbitrated)", inst); ("destructive", destructive) ];
  Table.print tbl;

  (* The FCs apply in two flavours: the destructive-analysis bound (ξ)
     is conservative on a XOR bus; the arbitrated analysis (ζ — the
     "reasonably straightforward" derivation Section 3.2 mentions)
     gives the tighter numbers. *)
  let params = Ddcr_params.default ~indices_per_source:2 inst in
  Format.printf "@.%a@." Feasibility.pp_report (Feasibility.check params inst);
  let bounds =
    Table.create [ "class"; "B destructive"; "B arbitrated"; "d" ]
  in
  List.iter
    (fun c ->
      Table.add_row bounds
        [
          c.Rtnet_workload.Message.cls_name;
          Printf.sprintf "%.0f" (Feasibility.latency_bound params inst c);
          Printf.sprintf "%.0f" (Feasibility.latency_bound_arbitrated params inst c);
          string_of_int c.Rtnet_workload.Message.cls_deadline;
        ])
    (Instance.classes inst);
  Table.print bounds
