(* Discrete manufacturing on dual-bus deterministic Ethernet.

   Section 5 reports that CSMA/DCR-based "single and dual bus
   Ethernets" were deployed for discrete/continuous manufacturing
   (Dassault Electronique, APTOR) and local area networking across the
   Ariane launchpad.  This example reproduces that engineering flow
   with CSMA/DDCR:

   1. a six-cell production line is NOT provably schedulable on one
      Gigabit segment (the emergency-stop deadline margin exceeds 1);
   2. partitioning the message set over two parallel busses restores
      provable feasibility per bus;
   3. simulation under the saturating adversary confirms both verdicts,
      and a channel-noise run shows the protocol retrying garbled
      frames without losing safety.

   Run with: dune exec examples/factory.exe *)

module Scenarios = Rtnet_workload.Scenarios
module Instance = Rtnet_workload.Instance
module Arrival = Rtnet_workload.Arrival
module Channel = Rtnet_channel.Channel
module Run = Rtnet_stats.Run
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Multi_bus = Rtnet_core.Multi_bus

let ms = 1_000_000

let () =
  let inst = Scenarios.manufacturing ~cells:6 in
  Format.printf "%a@." Instance.pp inst;

  (* 1. One bus: the FCs reject the configuration. *)
  let single_params = Ddcr_params.default inst in
  let single = Feasibility.check single_params inst in
  Format.printf "@.single bus: feasible = %b (worst margin %.3f)@."
    single.Feasibility.feasible single.Feasibility.worst_margin;

  (* 2. Two busses: worst-fit partition of the classes, per-bus FCs. *)
  let assignment = Multi_bus.partition_exn inst ~buses:2 in
  let dual = Multi_bus.check assignment in
  Format.printf "@.%a@." Multi_bus.pp_report dual;
  Array.iteri
    (fun i bus ->
      Format.printf "  bus %d carries %d classes, peak load %.3f@." i
        (List.length (Instance.classes bus))
        (Instance.peak_utilization bus))
    assignment.Multi_bus.buses;

  (* 3. Adversarial simulation on both configurations. *)
  let horizon = 50 * ms in
  let adversary = Instance.with_law inst Arrival.Greedy_burst in
  let single_run =
    Run.metrics (Ddcr.run ~seed:4 single_params adversary ~horizon)
  in
  let adv_assignment = Multi_bus.partition_exn adversary ~buses:2 in
  let dual_run = Run.metrics (Multi_bus.run ~seed:4 adv_assignment ~horizon) in
  Format.printf "@.under the peak-load adversary:@.";
  Format.printf "  single bus: %a@." Run.pp_metrics single_run;
  Format.printf "  dual bus:   %a@." Run.pp_metrics dual_run;

  (* 4. Electromagnetic reality of a factory floor: 5%% frame loss. *)
  let fault = { Channel.fault_rate = 0.05; fault_seed = 12 } in
  let noisy =
    Run.metrics
      (Ddcr.run ~fault ~seed:4
         (Ddcr_params.default assignment.Multi_bus.buses.(0))
         assignment.Multi_bus.buses.(0) ~horizon)
  in
  Format.printf "@.bus 0 with 5%% frame corruption: %a@." Run.pp_metrics noisy;
  print_endline
    "\n(the noisy run retries garbled frames deterministically; safety\n\
     and lockstep are preserved, latency absorbs the retries)"
